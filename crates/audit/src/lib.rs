//! `ndirect-audit` — the in-tree unsafe-code auditor.
//!
//! nDirect's performance lives in exactly the places `rustc` cannot check:
//! raw-pointer micro-kernels, scratch-arena packing, a hand-rolled thread
//! pool. This crate is the soundness gate for that surface — a
//! zero-dependency static analyzer that walks the workspace sources with a
//! minimal comment/string-aware lexer ([`lexer`]) and enforces the
//! repo-specific rules catalogued in [`rules::Rule`]:
//!
//! 1. every `unsafe` site carries an adjacent `// SAFETY:` invariant;
//! 2. library code never calls `.unwrap()`/`.expect()` outside tests;
//! 3. narrowing `as` casts in hot-path crates carry a `// CAST:` note;
//! 4. `static mut` is forbidden;
//! 5. every crate opts into the workspace lint table, and unsafe-free
//!    crates `#![forbid(unsafe_code)]`.
//!
//! On top of the lexer sits a lightweight item parser ([`parser`]) and a
//! workspace call graph ([`graph`]) enforcing the whole-program rules:
//!
//! 6. `hotpath-no-alloc` — nothing reachable from an `// AUDIT: hotpath`
//!    root allocates outside an `// AUDIT: cold` region;
//! 7. `hotpath-no-panic` — the same reachability hits no panicking call
//!    and no unjustified scalar `[]` indexing;
//! 8. `ordering-justify` — every atomic `Ordering` argument carries an
//!    adjacent `// ORDERING:` comment;
//! 9. `lock-order` — no lock pair is acquired in both orders anywhere,
//!    propagated through the call graph.
//!
//! Violations can only be silenced through the checked-in `audit.allow`
//! file ([`waiver`]) or a per-site annotation with a written reason, and
//! unused waivers are themselves violations, so the gate can never loosen
//! silently. CI runs `cargo run -p ndirect-audit` on every change (see
//! `.github/workflows/ci.yml`); the dynamic complements — Miri,
//! ThreadSanitizer, AddressSanitizer — live in the `soundness` workflow
//! job and DESIGN.md §12. Rule semantics and the annotation grammar are
//! documented in DESIGN.md §17.

#![forbid(unsafe_code)]

pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod waiver;

use std::path::{Path, PathBuf};

use rules::{FileKind, Rule, Violation};

/// Crates whose `src/` is held to the narrowing-cast rule — the hot path
/// the paper's kernels live in.
const HOT_PATH_CRATES: &[&str] = &["core", "simd", "threads", "tensor"];

/// The full audit outcome for one workspace.
pub struct AuditReport {
    /// Violations that no waiver matched, in path/line order.
    pub violations: Vec<Violation>,
    /// Violations silenced by an `audit.allow` entry (reported for
    /// transparency, not counted as failures).
    pub waived: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Qualified names of the `// AUDIT: hotpath` roots found.
    pub hot_roots: Vec<String>,
    /// Qualified names of every function reachable from a hotpath root
    /// (roots included) — the self-test asserts the paper's execute paths
    /// and the serve worker loop appear here.
    pub hot_reachable: Vec<String>,
}

impl AuditReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An error that prevented the audit from running at all (I/O, malformed
/// waiver file) — distinct from rule violations.
#[derive(Debug)]
pub enum AuditError {
    Io { path: PathBuf, err: std::io::Error },
    Waiver(waiver::WaiverError),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            AuditError::Waiver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Locates the workspace root from this crate's own manifest directory
/// (`crates/audit` → two levels up). Lets `cargo run -p ndirect-audit`
/// work from any CWD inside the workspace.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Audits the workspace rooted at `root`, applying waivers from
/// `<root>/audit.allow` when present.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, AuditError> {
    let allow_path = root.join("audit.allow");
    let waivers = if allow_path.is_file() {
        let text = read(&allow_path)?;
        waiver::parse(&text).map_err(AuditError::Waiver)?
    } else {
        Vec::new()
    };
    audit_with_waivers(root, &waivers)
}

/// Audits with an explicit waiver list (the testable entry point).
pub fn audit_with_waivers(
    root: &Path,
    waivers: &[waiver::Waiver],
) -> Result<AuditReport, AuditError> {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;
    let mut graph_files: Vec<graph::GraphFile> = Vec::new();
    let dep_cones = dependency_cones(root)?;

    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let crate_name = file_name(&crate_dir);
        let crate_start = graph_files.len();
        let dep_cone = dep_cones.get(&crate_name).cloned();

        // Library sources: all rules. Two passes — the first lexes and
        // collects out-of-line `#[cfg(test)] mod x;` declarations so the
        // second can classify their target files (`x.rs`, `x/mod.rs`, and
        // everything under `x/`) as test code for the unwrap/cast rules.
        let src = crate_dir.join("src");
        let mut lexed_sources = Vec::new();
        let mut test_files: Vec<PathBuf> = Vec::new();
        for file in rust_files(&src)? {
            let text = read(&file)?;
            let lexed = lexer::lex(&text);
            for name in rules::test_module_decls(&lexed) {
                test_files.extend(parser::module_candidates(&file, &name));
            }
            lexed_sources.push((file, lexed));
        }
        for (file, lexed) in lexed_sources {
            let rel = rel_path(root, &file);
            let in_bin = rel.contains("/src/bin/");
            let is_test_module = test_files
                .iter()
                .any(|t| file == *t || file.starts_with(t));
            let kind = FileKind {
                library: !in_bin && !is_test_module,
                hot_path: !in_bin
                    && !is_test_module
                    && HOT_PATH_CRATES.contains(&crate_name.as_str()),
            };
            violations.extend(rules::check_file(&rel, &lexed, kind));
            files_scanned += 1;
            graph_files.push(graph::GraphFile {
                rel,
                test_regions: rules::test_regions(&lexed),
                parsed: parser::parse(&lexed),
                lexed,
                in_graph: kind.library,
                dep_cone: dep_cone.clone(),
            });
        }

        // Integration tests and benches: safety-comment + static-mut only.
        for sub in ["tests", "benches", "examples"] {
            for file in rust_files(&crate_dir.join(sub))? {
                let rel = rel_path(root, &file);
                let text = read(&file)?;
                let lexed = lexer::lex(&text);
                let kind = FileKind {
                    library: false,
                    hot_path: false,
                };
                violations.extend(rules::check_file(&rel, &lexed, kind));
                files_scanned += 1;
            }
        }

        check_lint_header(root, &crate_dir, &graph_files[crate_start..], &mut violations)?;
    }

    // Whole-workspace graph passes (hotpath reachability, lock order).
    let graph_report = graph::analyze(&graph_files);
    violations.extend(graph_report.violations);

    // Workspace-level integration tests and examples.
    for sub in ["tests", "examples"] {
        for file in rust_files(&root.join(sub))? {
            let rel = rel_path(root, &file);
            let text = read(&file)?;
            let lexed = lexer::lex(&text);
            let kind = FileKind {
                library: false,
                hot_path: false,
            };
            violations.extend(rules::check_file(&rel, &lexed, kind));
            files_scanned += 1;
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    // Apply waivers; every waiver must earn its keep.
    let mut used = vec![false; waivers.len()];
    let (waived, live): (Vec<_>, Vec<_>) = violations.into_iter().partition(|v| {
        let hit = waivers
            .iter()
            .position(|w| w.rule == v.rule && w.file == v.file);
        if let Some(i) = hit {
            used[i] = true;
            true
        } else {
            false
        }
    });
    let mut violations = live;
    for (w, used) in waivers.iter().zip(used) {
        if !used {
            violations.push(Violation {
                file: "audit.allow".to_owned(),
                line: w.line,
                rule: Rule::UnusedWaiver,
                msg: format!(
                    "waiver `{} {}` matches no live violation; delete it",
                    w.rule.id(),
                    w.file
                ),
            });
        }
    }

    Ok(AuditReport {
        violations,
        waived,
        files_scanned,
        hot_roots: graph_report.hot_roots,
        hot_reachable: graph_report.hot_reachable,
    })
}

/// Rule 5: `[lints] workspace = true` in the crate manifest, and
/// `#![forbid(unsafe_code)]` in `lib.rs` when no source uses `unsafe`.
fn check_lint_header(
    root: &Path,
    crate_dir: &Path,
    sources: &[graph::GraphFile],
    out: &mut Vec<Violation>,
) -> Result<(), AuditError> {
    let manifest_path = crate_dir.join("Cargo.toml");
    let manifest = read(&manifest_path)?;
    let rel_manifest = rel_path(root, &manifest_path);
    if !manifest_opts_into_workspace_lints(&manifest) {
        out.push(Violation {
            file: rel_manifest.clone(),
            line: 1,
            rule: Rule::LintHeader,
            msg: "crate does not set `[lints] workspace = true`".to_owned(),
        });
    }
    let lib = crate_dir.join("src/lib.rs");
    if lib.is_file() && !sources.iter().any(|f| rules::uses_unsafe(&f.lexed)) {
        let lib_text = read(&lib)?;
        let scrubbed = lexer::lex(&lib_text).scrubbed;
        if !scrubbed.contains("#![forbid(unsafe_code)]") {
            out.push(Violation {
                file: rel_path(root, &lib),
                line: 1,
                rule: Rule::LintHeader,
                msg: "crate uses no unsafe; add #![forbid(unsafe_code)]".to_owned(),
            });
        }
    }
    Ok(())
}

/// `[lints]` table with `workspace = true` — a line-level check is enough
/// for the fixed manifest style this workspace uses.
fn manifest_opts_into_workspace_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints && line.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

/// Per-crate transitive path-dependency cones (crate directory names,
/// self included), from a line-level scan of each crate's `Cargo.toml`
/// `[dependencies]` section. Dev-dependencies are ignored: test code never
/// joins the call graph, and a bench-only edge (e.g. onto the baselines
/// crate) would re-admit exactly the phantom paths the cone exists to cut.
fn dependency_cones(
    root: &Path,
) -> Result<std::collections::BTreeMap<String, std::collections::BTreeSet<String>>, AuditError> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let name = file_name(&crate_dir);
        let manifest = crate_dir.join("Cargo.toml");
        let mut deps = BTreeSet::new();
        deps.insert(name.clone());
        if manifest.is_file() {
            let mut in_deps = false;
            for line in read(&manifest)?.lines() {
                let line = line.trim();
                if let Some(section) = line.strip_prefix('[') {
                    let section = section.trim_end_matches(']');
                    in_deps =
                        section == "dependencies" || section.starts_with("dependencies.");
                }
                if !in_deps {
                    continue;
                }
                // `foo = { path = "../simd" }` / `path = "../simd"` — the
                // path's last segment is the workspace crate directory.
                if let Some(rest) = line.split("path = \"").nth(1) {
                    if let Some(path) = rest.split('"').next() {
                        if let Some(seg) = path.split('/').next_back() {
                            deps.insert(seg.to_owned());
                        }
                    }
                }
            }
        }
        direct.insert(name, deps);
    }
    // Transitive closure; cycles are impossible in a buildable workspace
    // but the fixpoint tolerates them anyway.
    loop {
        let mut changed = false;
        let names: Vec<String> = direct.keys().cloned().collect();
        for name in &names {
            let reach: BTreeSet<String> = direct[name]
                .iter()
                .filter_map(|d| direct.get(d))
                .flat_map(|s| s.iter().cloned())
                .collect();
            if let Some(entry) = direct.get_mut(name) {
                let before = entry.len();
                entry.extend(reach);
                changed |= entry.len() != before;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(direct)
}

fn read(path: &Path) -> Result<String, AuditError> {
    std::fs::read_to_string(path).map_err(|err| AuditError::Io {
        path: path.to_path_buf(),
        err,
    })
}

/// Immediate subdirectories, sorted by name for deterministic reports.
fn sorted_dirs(path: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut out = Vec::new();
    if !path.is_dir() {
        return Ok(out);
    }
    let entries = std::fs::read_dir(path).map_err(|err| AuditError::Io {
        path: path.to_path_buf(),
        err,
    })?;
    for entry in entries {
        let entry = entry.map_err(|err| AuditError::Io {
            path: path.to_path_buf(),
            err,
        })?;
        if entry.path().is_dir() {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `path`, recursively, sorted.
fn rust_files(path: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut out = Vec::new();
    collect_rust_files(path, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_rust_files(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    if !path.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(path).map_err(|err| AuditError::Io {
        path: path.to_path_buf(),
        err,
    })?;
    for entry in entries {
        let entry = entry.map_err(|err| AuditError::Io {
            path: path.to_path_buf(),
            err,
        })?;
        let p = entry.path();
        if p.is_dir() {
            collect_rust_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

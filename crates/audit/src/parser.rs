//! A lightweight item parser over scrubbed source.
//!
//! The call-graph rules (DESIGN.md §17) need more than token scans: they
//! need to know *which function* a call or index expression lives in, what
//! the function's enclosing `impl` type is, and whether the function (or a
//! region inside it) carries an `// AUDIT:` annotation. This module grows
//! that structure out of the [`crate::lexer`]'s scrubbed text — it is a
//! heuristic item parser, not a real Rust front end:
//!
//! * **items** — `fn` declarations with name, body byte-span, enclosing
//!   `impl`/`trait` target type, and 0-based header line;
//! * **modules** — out-of-line `mod foo;` declarations, resolved to either
//!   `foo.rs` or `foo/mod.rs` by [`resolve_module`];
//! * **calls** — call expressions extracted by identifier + method-name
//!   heuristics: `name(...)`, `.name(...)`, `Path::name(...)`, `name!(...)`,
//!   with turbofish (`::<T>`) tolerated;
//! * **index sites** — scalar subscript expressions `expr[i]` (range
//!   slices `expr[a..b]` are exempt — see the rule docs for why);
//! * **annotations** — `// AUDIT: hotpath` / `// AUDIT: cold` markers on
//!   functions and cold block regions inside bodies.
//!
//! Soundness posture: the parser over-approximates calls (a name can
//! resolve to several same-named functions; a call to an unknown name
//! resolves to nothing) and never panics on malformed input. The
//! adversarial fixtures in `tests/graph.rs` pin down the cases that would
//! otherwise create false edges: macro bodies, nested closures, fn-pointer
//! types, `impl Trait` returns, raw-string call-lookalikes.

use std::path::{Path, PathBuf};

use crate::lexer::Lexed;

/// How a call expression was written at the site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — a free-function call.
    Free,
    /// `.name(...)` — a method call; `recv` holds the heuristic receiver
    /// identifier (the last field/variable name before the dot, with
    /// trailing index/call groups skipped).
    Method { recv: String },
    /// `Qual::name(...)` — a path call; `qual` is the segment immediately
    /// before the final `::`.
    Path { qual: String },
    /// `name!(...)` — a macro invocation.
    Macro,
}

/// One extracted call expression.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee identifier (for macros, without the `!`).
    pub name: String,
    pub kind: CallKind,
    /// Byte offset of the identifier in the scrubbed text.
    pub byte: usize,
    /// 0-based line.
    pub line: usize,
}

/// One scalar subscript `expr[i]` (no `..` at bracket depth 0).
#[derive(Clone, Debug)]
pub struct IndexSite {
    pub byte: usize,
    pub line: usize,
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl`/`trait` target type (first path segment of the
    /// implemented-for type), e.g. `ConvPlan` for `impl<'f> ConvPlan<'f>`.
    pub self_ty: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub header_line: usize,
    /// Byte span of the body including braces, in the scrubbed text.
    /// `None` for bodyless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// `// AUDIT: hotpath` on or above the header — a reachability root.
    pub hot: bool,
    /// `// AUDIT: cold` on or above the header — excluded from traversal.
    pub cold: bool,
}

impl FnItem {
    /// `Type::name` or `name`, for reports and the coverage self-test.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An out-of-line `mod foo;` declaration.
#[derive(Clone, Debug)]
pub struct ModDecl {
    pub name: String,
    /// 0-based line of the `mod` keyword.
    pub line: usize,
}

/// Everything the graph passes need from one source file.
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub mods: Vec<ModDecl>,
    pub calls: Vec<CallSite>,
    pub indexes: Vec<IndexSite>,
    /// 0-based line spans of in-body `// AUDIT: cold` regions (from the
    /// marker line to the close of its enclosing block).
    pub cold_regions: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// Index of the innermost fn whose body span contains `byte`.
    pub fn fn_at(&self, byte: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if let Some((a, b)) = f.body {
                if byte > a && byte < b {
                    best = match best {
                        // SAFETY-free heuristic: narrower span wins.
                        Some(j) if span_len(self.fns[j].body) <= span_len(f.body) => Some(j),
                        _ => Some(i),
                    };
                }
            }
        }
        best
    }

    /// Whether 0-based `line` falls in an in-body cold region.
    pub fn in_cold_region(&self, line: usize) -> bool {
        self.cold_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

fn span_len(s: Option<(usize, usize)>) -> usize {
    s.map_or(usize::MAX, |(a, b)| b - a)
}

/// Resolves an out-of-line `mod foo;` declared in `decl_file` to its
/// source: sibling `foo.rs`, or directory module `foo/mod.rs`. In
/// `lib.rs`/`main.rs`/`mod.rs` the search base is the declaring file's
/// directory; in `bar.rs` it is `bar/` (the 2018-edition layout).
pub fn resolve_module(decl_file: &Path, name: &str) -> Option<PathBuf> {
    let stem = decl_file.file_stem().and_then(|s| s.to_str())?;
    let base = match stem {
        "lib" | "main" | "mod" => decl_file.parent()?.to_path_buf(),
        _ => decl_file.parent()?.join(stem),
    };
    let as_file = base.join(format!("{name}.rs"));
    if as_file.is_file() {
        return Some(as_file);
    }
    let as_dir = base.join(name).join("mod.rs");
    as_dir.is_file().then_some(as_dir)
}

/// The candidate paths `resolve_module` probes, for callers that classify
/// files without touching the filesystem (the test-module exemption walks
/// a list it built before reading every file).
pub fn module_candidates(decl_file: &Path, name: &str) -> Vec<PathBuf> {
    let Some(stem) = decl_file.file_stem().and_then(|s| s.to_str()) else {
        return Vec::new();
    };
    let Some(parent) = decl_file.parent() else {
        return Vec::new();
    };
    let base = match stem {
        "lib" | "main" | "mod" => parent.to_path_buf(),
        _ => parent.join(stem),
    };
    vec![
        base.join(format!("{name}.rs")),
        base.join(name).join("mod.rs"),
        // Classifying a declaration as test code must cover the module's
        // whole subtree (`foo/helpers.rs`), so the bare directory is a
        // prefix candidate too.
        base.join(name),
    ]
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "in", "as", "box", "await", "unsafe", "const", "static", "pub", "use", "mod", "impl",
    "trait", "struct", "enum", "union", "where", "dyn", "crate", "self", "Self", "super",
    "break", "continue", "type", "extern", "yield",
];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// Parses one lexed file into items, calls, subscripts, and annotations.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let s = &lexed.scrubbed;
    let bytes = s.as_bytes();
    let line_starts = line_start_table(bytes);
    let attr_spans = attribute_spans(bytes);
    let impls = impl_spans(bytes, &line_starts);
    let fns = parse_fns(lexed, bytes, &line_starts, &impls);
    let mods = parse_mods(bytes, &line_starts);
    let (calls, indexes) = extract_calls(bytes, &line_starts, &attr_spans);
    let cold_regions = cold_regions(lexed, bytes, &line_starts, &fns);
    ParsedFile {
        fns,
        mods,
        calls,
        indexes,
        cold_regions,
    }
}

/// Byte offset of the start of each 0-based line.
fn line_start_table(bytes: &[u8]) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of(line_starts: &[usize], byte: usize) -> usize {
    match line_starts.binary_search(&byte) {
        Ok(l) => l,
        Err(l) => l.saturating_sub(1),
    }
}

/// Spans of `#[...]` / `#![...]` attributes (bracket-balanced); call and
/// index extraction skips them so `#[derive(Clone)]` or
/// `#[cfg(feature = "x")]` never reads as a call.
fn attribute_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        if bytes[i] == b'#' {
            let open = if bytes[i + 1] == b'[' {
                i + 1
            } else if bytes[i + 1] == b'!' && bytes.get(i + 2) == Some(&b'[') {
                i + 2
            } else {
                i += 1;
                continue;
            };
            let mut depth = 0usize;
            let mut j = open;
            while j < bytes.len() {
                match bytes[j] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push((i, j.min(bytes.len())));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

fn in_spans(spans: &[(usize, usize)], byte: usize) -> bool {
    spans.iter().any(|&(a, b)| byte >= a && byte <= b)
}

/// `impl`/`trait` block spans with their target type's first path segment.
/// For `impl Trait for Type` the type wins; `impl<'f> ConvPlan<'f>` yields
/// `ConvPlan`; `trait Kernel` yields `Kernel`.
fn impl_spans(bytes: &[u8], _line_starts: &[usize]) -> Vec<(usize, usize, String)> {
    let s = unsafe_free_str(bytes);
    let mut out = Vec::new();
    for kw in ["impl", "trait"] {
        let mut at = 0usize;
        while let Some(p) = find_word_from(s, kw, at) {
            at = p + kw.len();
            // Skip generic params `<...>` right after the keyword.
            let mut j = skip_ws(bytes, at);
            if bytes.get(j) == Some(&b'<') {
                j = skip_angles(bytes, j);
            }
            // Read the head type path; if a `for` follows, re-read.
            let (mut ty, mut k) = read_type_head(bytes, j);
            let k2 = skip_ws(bytes, k);
            if s[k2..].starts_with("for") && !is_ident_byte(*bytes.get(k2 + 3).unwrap_or(&b' ')) {
                let (ty2, k3) = read_type_head(bytes, skip_ws(bytes, k2 + 3));
                ty = ty2;
                k = k3;
            }
            // Find the opening brace (skipping where clauses), then match.
            let mut m = k;
            while m < bytes.len() && bytes[m] != b'{' && bytes[m] != b';' {
                m += 1;
            }
            if bytes.get(m) != Some(&b'{') {
                continue;
            }
            let close = match_brace(bytes, m);
            if !ty.is_empty() {
                out.push((m, close, ty));
            }
        }
    }
    out
}

/// The first path-segment identifier of a type expression starting at `j`
/// (skipping `&`, `dyn`, `::`), and the byte just past the full head
/// (generics skipped).
fn read_type_head(bytes: &[u8], j: usize) -> (String, usize) {
    let mut j = skip_ws(bytes, j);
    while j < bytes.len() && (bytes[j] == b'&' || bytes[j] == b'\'') {
        j += 1;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        j = skip_ws(bytes, j);
    }
    let mut seg_start = j;
    let mut seg_end = j;
    while j < bytes.len() {
        let b = bytes[j];
        if is_ident_byte(b) {
            j += 1;
            seg_end = j;
        } else if b == b':' && bytes.get(j + 1) == Some(&b':') {
            j += 2;
            seg_start = j;
            seg_end = j;
        } else if b == b'<' {
            // Generic arguments end the head; the segment stops here.
            j = skip_angles(bytes, j);
            break;
        } else {
            break;
        }
    }
    // The *last* segment names the type (`crate::plan::ConvPlan`); earlier
    // segments are modules.
    let ty = String::from_utf8_lossy(&bytes[seg_start..seg_end.min(bytes.len())]).into_owned();
    (ty, j)
}

fn skip_ws(bytes: &[u8], mut j: usize) -> usize {
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    j
}

/// Skips a balanced `<...>` group starting at `j` (which must be `<`).
/// Tolerates `->` inside (it never appears at angle depth 0 within
/// generics) and gives up at `{`/`;` so malformed input cannot loop.
fn skip_angles(bytes: &[u8], j: usize) -> usize {
    let mut depth = 0usize;
    let mut k = j;
    while k < bytes.len() {
        match bytes[k] {
            b'<' => depth += 1,
            b'>' => {
                // `->` is not an angle close.
                if k > 0 && bytes[k - 1] == b'-' {
                    k += 1;
                    continue;
                }
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            b'{' | b';' => return k,
            _ => {}
        }
        k += 1;
    }
    k
}

/// Byte of the `}` matching the `{` at `open` (or EOF).
pub(crate) fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len().saturating_sub(1)
}

fn unsafe_free_str(bytes: &[u8]) -> &str {
    // The scrubbed text is valid UTF-8 by construction (lexer contract).
    std::str::from_utf8(bytes).unwrap_or("")
}

fn find_word_from(s: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut at = from;
    while let Some(p) = s[at..].find(word).map(|p| p + at) {
        let before_ok = p == 0 || !is_ident_byte(bytes[p - 1]);
        let end = p + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(p);
        }
        at = p + 1;
    }
    None
}

/// All `fn` items, with annotations read from the comment/attribute block
/// above the header (same adjacency discipline as `// SAFETY:`).
fn parse_fns(
    lexed: &Lexed,
    bytes: &[u8],
    line_starts: &[usize],
    impls: &[(usize, usize, String)],
) -> Vec<FnItem> {
    let s = unsafe_free_str(bytes);
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some(p) = find_word_from(s, "fn", at) {
        at = p + 2;
        let mut j = skip_ws(bytes, p + 2);
        // `fn(` / `fn (` is a pointer *type*, not an item.
        if !bytes.get(j).copied().is_some_and(is_ident_start) {
            continue;
        }
        let name_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        let name = s[name_start..j].to_owned();
        // Signature scan: body `{` at paren/bracket depth 0, or `;` (no
        // body). Generic bounds may nest angles; braces only appear in the
        // body itself for the code this parser serves.
        let mut depth = 0isize;
        let mut k = j;
        let mut body = None;
        while k < bytes.len() {
            match bytes[k] {
                b'(' | b'[' => depth += 1,
                b')' | b']' => depth -= 1,
                b'{' if depth == 0 => {
                    let close = match_brace(bytes, k);
                    body = Some((k, close));
                    break;
                }
                b';' if depth == 0 => break,
                b'<' => k = skip_angles(bytes, k).saturating_sub(1),
                _ => {}
            }
            k += 1;
        }
        let header_line = line_of(line_starts, p);
        let self_ty = impls
            .iter()
            .filter(|(a, b, _)| p > *a && p < *b)
            .min_by_key(|(a, b, _)| b - a)
            .map(|(_, _, ty)| ty.clone());
        let (hot, cold) = fn_annotations(lexed, line_starts, header_line);
        out.push(FnItem {
            name,
            self_ty,
            header_line,
            body,
            hot,
            cold,
        });
    }
    out
}

/// Scans the header line and the contiguous comment/attribute/blank block
/// above it for `// AUDIT: hotpath` / `// AUDIT: cold`.
fn fn_annotations(lexed: &Lexed, line_starts: &[usize], header_line: usize) -> (bool, bool) {
    let mut hot = false;
    let mut cold = false;
    let mut check = |text: &str| {
        if text.contains("AUDIT: hotpath") {
            hot = true;
        }
        if text.contains("AUDIT: cold") {
            cold = true;
        }
    };
    check(lexed.comment_line(header_line));
    let mut l = header_line;
    let mut budget = 20usize;
    while l > 0 && budget > 0 {
        l -= 1;
        budget -= 1;
        let comment = lexed.comment_line(l);
        let code = lexed.code_line(l).trim().to_owned();
        if !comment.is_empty() && code.is_empty() {
            check(comment);
            continue;
        }
        if code.is_empty() || code.starts_with("#[") || code.starts_with("#![") {
            continue;
        }
        break;
    }
    let _ = line_starts;
    (hot, cold)
}

/// Out-of-line `mod name;` declarations (any visibility, any cfg).
fn parse_mods(bytes: &[u8], line_starts: &[usize]) -> Vec<ModDecl> {
    let s = unsafe_free_str(bytes);
    let mut out = Vec::new();
    let mut at = 0usize;
    while let Some(p) = find_word_from(s, "mod", at) {
        at = p + 3;
        let mut j = skip_ws(bytes, p + 3);
        let name_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = s[name_start..j].to_owned();
        j = skip_ws(bytes, j);
        if bytes.get(j) == Some(&b';') {
            out.push(ModDecl {
                name,
                line: line_of(line_starts, p),
            });
        }
    }
    out
}

/// Call + scalar-subscript extraction over the whole file. Attribute spans
/// are skipped; everything else (macro bodies included — macro argument
/// tokens are real code to the rules) is scanned.
fn extract_calls(
    bytes: &[u8],
    line_starts: &[usize],
    attr_spans: &[(usize, usize)],
) -> (Vec<CallSite>, Vec<IndexSite>) {
    let mut calls = Vec::new();
    let mut indexes = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if in_spans(attr_spans, i) {
            i += 1;
            continue;
        }
        if b == b'[' {
            // Subscript if the previous non-ws byte ends a value
            // expression; array literals/types follow `=`/`(`/`{`/`,`/…
            let prev = prev_nonws(bytes, i);
            let is_subscript =
                prev.is_some_and(|p| is_ident_byte(bytes[p]) || bytes[p] == b')' || bytes[p] == b']');
            // A macro invocation with bracket delimiters (`vec![…]`,
            // `matches!`-style) is not a subscript: the `!` sits before.
            let is_macro = prev.is_some_and(|p| bytes[p] == b'!');
            if is_subscript && !is_macro {
                let close = match_bracket(bytes, i);
                if !has_toplevel_range(bytes, i, close) {
                    indexes.push(IndexSite {
                        byte: i,
                        line: line_of(line_starts, i),
                    });
                }
            }
            i += 1;
            continue;
        }
        if is_ident_start(b) && prev_is_boundary(bytes, i) {
            let start = i;
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
            let name: String = String::from_utf8_lossy(&bytes[start..i]).into_owned();
            if KEYWORDS.contains(&name.as_str()) {
                continue;
            }
            // `Fn(usize) -> usize` bounds are the one place Rust lets a
            // trait take parentheses; they are types, never calls.
            if matches!(name.as_str(), "Fn" | "FnMut" | "FnOnce") {
                continue;
            }
            let mut j = skip_ws(bytes, i);
            let mut is_macro = false;
            if bytes.get(j) == Some(&b'!') && bytes.get(j + 1) != Some(&b'=') {
                is_macro = true;
                j = skip_ws(bytes, j + 1);
            }
            // Turbofish between name and argument list.
            if !is_macro && bytes.get(j) == Some(&b':') && bytes.get(j + 1) == Some(&b':') {
                let k = skip_ws(bytes, j + 2);
                if bytes.get(k) == Some(&b'<') {
                    j = skip_ws(bytes, skip_angles(bytes, k));
                } else {
                    continue; // `name::more` — a path segment, handled at `more`.
                }
            }
            let opens_args = match bytes.get(j) {
                Some(&b'(') => true,
                Some(&b'[') | Some(&b'{') if is_macro => true,
                _ => false,
            };
            if !opens_args {
                continue;
            }
            // Classify by what precedes the identifier.
            let kind = match prev_nonws(bytes, start) {
                _ if is_macro => CallKind::Macro,
                Some(p) if bytes[p] == b'.' => CallKind::Method {
                    recv: receiver_ident(bytes, p),
                },
                Some(p) if p > 0 && bytes[p] == b':' && bytes[p - 1] == b':' => {
                    CallKind::Path {
                        qual: path_qualifier(bytes, p - 1),
                    }
                }
                Some(p) if bytes[p] == b'n' && word_before_is(bytes, p, "fn") => {
                    continue; // `fn name(` — a declaration, not a call.
                }
                _ => CallKind::Free,
            };
            calls.push(CallSite {
                name,
                kind,
                byte: start,
                line: line_of(line_starts, start),
            });
            continue;
        }
        i += 1;
    }
    (calls, indexes)
}

fn prev_nonws(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !bytes[j].is_ascii_whitespace() {
            return Some(j);
        }
    }
    None
}

fn prev_is_boundary(bytes: &[u8], i: usize) -> bool {
    i == 0 || !is_ident_byte(bytes[i - 1])
}

fn word_before_is(bytes: &[u8], end: usize, word: &str) -> bool {
    let w = word.as_bytes();
    if end + 1 < w.len() {
        return false;
    }
    let start = end + 1 - w.len();
    &bytes[start..=end] == w && (start == 0 || !is_ident_byte(bytes[start - 1]))
}

/// Byte of the `]` matching the `[` at `open` (or EOF).
fn match_bracket(bytes: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        match bytes[j] {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    bytes.len().saturating_sub(1)
}

/// Whether `bytes[open..=close]` contains a `..` at bracket/paren depth 0
/// (a range subscript, exempt from the scalar-index rule).
fn has_toplevel_range(bytes: &[u8], open: usize, close: usize) -> bool {
    let mut depth = 0usize;
    let mut j = open + 1;
    while j < close.min(bytes.len()) {
        match bytes[j] {
            b'[' | b'(' => depth += 1,
            b']' | b')' => depth = depth.saturating_sub(1),
            b'.' if depth == 0 && bytes.get(j + 1) == Some(&b'.') => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// The heuristic receiver identifier of a method call: from the `.` at
/// `dot`, walk back over trailing `[...]` index groups and `self.`/`Self::`
/// qualifiers and return the *nearest* field/variable name — the segment
/// that names the value the method is called on. `self.arena.take()` →
/// `arena`; `self.inner.queue.lock()` → `queue`; `scratch[tid].lock()` →
/// `scratch`; `registry().lock()` → `registry` (a call group's callee
/// names its product). Lock-order identity rides on this.
fn receiver_ident(bytes: &[u8], dot: usize) -> String {
    let mut j = dot; // at `.`
    loop {
        let Some(p) = prev_nonws(bytes, j) else {
            return String::new();
        };
        match bytes[p] {
            b']' => {
                j = match_back(bytes, p, b'[', b']');
            }
            b')' => {
                let open = match_back(bytes, p, b'(', b')');
                let mut start = open;
                while start > 0 && is_ident_byte(bytes[start - 1]) {
                    start -= 1;
                }
                return String::from_utf8_lossy(&bytes[start..open]).into_owned();
            }
            b'.' => {
                j = p;
            }
            c if is_ident_byte(c) => {
                let mut start = p;
                while start > 0 && is_ident_byte(bytes[start - 1]) {
                    start -= 1;
                }
                let ident = String::from_utf8_lossy(&bytes[start..=p]).into_owned();
                if ident == "self" || ident == "Self" {
                    j = start;
                    continue;
                }
                return ident;
            }
            _ => return String::new(),
        }
    }
}

/// The path segment immediately before the `::` whose first colon sits at
/// `colon` — `Vec::new` → `Vec`, `crate::conv::pack` → `conv`. Generic
/// arguments on the qualifier (`Foo::<T>::new`) are skipped.
fn path_qualifier(bytes: &[u8], colon: usize) -> String {
    let Some(mut p) = prev_nonws(bytes, colon) else {
        return String::new();
    };
    if bytes[p] == b'>' {
        // `Foo::<T>::new` — hop over the angle group and its own `::`.
        let mut depth = 0usize;
        loop {
            match bytes[p] {
                b'>' if p == 0 || bytes[p - 1] != b'-' => depth += 1,
                b'<' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if p == 0 {
                return String::new();
            }
            p -= 1;
        }
        let Some(q) = prev_nonws(bytes, p) else {
            return String::new();
        };
        if q == 0 || bytes[q] != b':' || bytes[q - 1] != b':' {
            return String::new();
        }
        let Some(r) = prev_nonws(bytes, q - 1) else {
            return String::new();
        };
        p = r;
    }
    if !is_ident_byte(bytes[p]) {
        return String::new();
    }
    let mut start = p;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    String::from_utf8_lossy(&bytes[start..=p]).into_owned()
}

/// Walks back from the closer at `at` to its matching opener.
fn match_back(bytes: &[u8], at: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    let mut j = at;
    loop {
        if bytes[j] == close {
            depth += 1;
        } else if bytes[j] == open {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
        if j == 0 {
            return 0;
        }
        j -= 1;
    }
}

/// In-body `// AUDIT: cold` markers: each opens a region from its line to
/// the close of the enclosing brace block. Marker lines already consumed
/// as *function* annotations (the block above an `fn` header) are skipped.
fn cold_regions(
    lexed: &Lexed,
    bytes: &[u8],
    line_starts: &[usize],
    fns: &[FnItem],
) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for (line, comment) in lexed.comments.iter().enumerate() {
        if !comment.contains("AUDIT: cold") {
            continue;
        }
        // Attached to a following fn header? Then it's a fn annotation.
        let attached = fns.iter().any(|f| {
            f.cold && f.header_line >= line && f.header_line.saturating_sub(line) <= 20
        });
        if attached && !inside_any_body(fns, line_starts, line) {
            continue;
        }
        let byte = *line_starts.get(line).unwrap_or(&0);
        // Enclosing block: nearest unmatched `{` before the marker.
        let Some(open) = enclosing_open_brace(bytes, byte) else {
            continue;
        };
        let close = match_brace(bytes, open);
        regions.push((line, line_of(line_starts, close)));
    }
    regions
}

fn inside_any_body(fns: &[FnItem], line_starts: &[usize], line: usize) -> bool {
    let byte = *line_starts.get(line).unwrap_or(&0);
    fns.iter()
        .any(|f| f.body.is_some_and(|(a, b)| byte > a && byte < b))
}

/// The opening `{` of the innermost block containing `byte`.
pub(crate) fn enclosing_open_brace(bytes: &[u8], byte: usize) -> Option<usize> {
    let mut stack: Vec<usize> = Vec::new();
    for (i, &b) in bytes.iter().enumerate().take(byte.min(bytes.len())) {
        match b {
            b'{' => stack.push(i),
            b'}' => {
                stack.pop();
            }
            _ => {}
        }
    }
    stack.last().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn fn_items_with_impl_context() {
        let p = parse_src(
            "impl<'f> ConvPlan<'f> {\n    pub fn execute(&self) {}\n}\n\
             pub fn free_one() {}\n",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qualified(), "ConvPlan::execute");
        assert_eq!(p.fns[1].qualified(), "free_one");
    }

    #[test]
    fn impl_trait_for_type_uses_the_type() {
        let p = parse_src("impl Drop for Server {\n    fn drop(&mut self) {}\n}\n");
        assert_eq!(p.fns[0].qualified(), "Server::drop");
    }

    #[test]
    fn hot_and_cold_annotations_bind_to_headers() {
        let p = parse_src(
            "// AUDIT: hotpath — the paper's inner loop.\npub fn run() { helper(); }\n\n\
             // AUDIT: cold — error formatting only.\nfn helper() {}\n",
        );
        assert!(p.fns[0].hot && !p.fns[0].cold);
        assert!(p.fns[1].cold && !p.fns[1].hot);
    }

    #[test]
    fn calls_are_classified() {
        let p = parse_src(
            "fn f(x: &T) {\n    free(1);\n    x.method(2);\n    Qual::path(3);\n    mac!(4);\n}\n",
        );
        let kinds: Vec<_> = p.calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert!(kinds.contains(&(("free"), &CallKind::Free)));
        assert!(p
            .calls
            .iter()
            .any(|c| c.name == "method" && matches!(&c.kind, CallKind::Method { recv } if recv == "x")));
        assert!(p
            .calls
            .iter()
            .any(|c| c.name == "path" && matches!(&c.kind, CallKind::Path { qual } if qual == "Qual")));
        assert!(p.calls.iter().any(|c| c.name == "mac" && c.kind == CallKind::Macro));
    }

    #[test]
    fn fn_pointer_types_and_impl_trait_are_not_calls_or_items() {
        let p = parse_src(
            "struct J { call: unsafe fn(*const (), usize) }\n\
             fn g() -> impl Fn(usize) -> usize { |x| x }\n\
             fn h(cb: fn(u32)) { cb(1); }\n",
        );
        // Only g and h are items (the pointer types have no name).
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["g", "h"]);
        // `Fn(usize)` in type position must not read as a call to `Fn`.
        assert!(!p.calls.iter().any(|c| c.name == "Fn"));
        // But the *value* call through the pointer is a call.
        assert!(p.calls.iter().any(|c| c.name == "cb"));
    }

    #[test]
    fn scalar_subscripts_found_ranges_exempt() {
        let p = parse_src(
            "fn f(v: &[u32], i: usize) -> u32 {\n    let a = &v[1..3];\n    let b = v[..];\n    v[i] + a.len() as u32 + b.len() as u32\n}\n",
        );
        assert_eq!(p.indexes.len(), 1);
        assert_eq!(p.indexes[0].line, 3);
    }

    #[test]
    fn receiver_of_indexed_chain_is_the_base_ident() {
        let p = parse_src("fn f() {\n    scratch[tid].lock();\n    self.arena.take();\n}\n");
        let recv = |name: &str| {
            p.calls
                .iter()
                .find_map(|c| match (&c.kind, c.name.as_str()) {
                    (CallKind::Method { recv }, n) if n == name => Some(recv.clone()),
                    _ => None,
                })
                .unwrap_or_default()
        };
        assert_eq!(recv("lock"), "scratch");
        assert_eq!(recv("take"), "arena");
    }

    #[test]
    fn cold_region_spans_enclosing_block() {
        let p = parse_src(
            "fn f(x: Option<u32>) -> u32 {\n    match x {\n        Some(v) => v,\n        None => {\n            // AUDIT: cold — miss path allocates by design.\n            build()\n        }\n    }\n}\n",
        );
        assert_eq!(p.cold_regions.len(), 1);
        let (a, b) = p.cold_regions[0];
        assert!(a <= 4 && b >= 6, "region {a}..{b} must cover the arm");
        assert!(p.in_cold_region(5));
        assert!(!p.in_cold_region(1));
    }

    #[test]
    fn out_of_line_mods_are_collected() {
        let p = parse_src("pub mod conv;\n#[cfg(test)]\nmod tests;\nmod inline { }\n");
        let names: Vec<_> = p.mods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["conv", "tests"]);
    }

    #[test]
    fn raw_string_call_lookalikes_create_nothing() {
        let p = parse_src(
            "fn f() -> &'static str {\n    r#\"push(1); format!(\"x\"); evil[0]\"#\n}\n",
        );
        assert!(p.calls.iter().all(|c| c.name != "push" && c.name != "format"));
        assert!(p.indexes.is_empty());
    }

    #[test]
    fn turbofish_calls_resolve_to_the_name() {
        let p = parse_src("fn f() {\n    parse::<u32>(\"1\");\n    v.collect::<Vec<_>>();\n}\n");
        assert!(p.calls.iter().any(|c| c.name == "parse"));
        assert!(p.calls.iter().any(|c| c.name == "collect"));
    }

    #[test]
    fn nested_closures_attribute_calls_to_the_enclosing_fn() {
        let p = parse_src(
            "fn outer(pool: &Pool) {\n    pool.run(|tid| {\n        inner(tid);\n    });\n}\n",
        );
        let call = p.calls.iter().find(|c| c.name == "inner").expect("found");
        let idx = p.fn_at(call.byte).expect("in a fn");
        assert_eq!(p.fns[idx].name, "outer");
    }

    #[test]
    fn module_candidates_cover_both_layouts() {
        let lib = Path::new("/ws/crates/demo/src/lib.rs");
        let c = module_candidates(lib, "conv");
        assert!(c.iter().any(|p| p.ends_with("src/conv.rs")));
        assert!(c.iter().any(|p| p.ends_with("src/conv/mod.rs")));
        let nested = Path::new("/ws/crates/demo/src/server.rs");
        let c = module_candidates(nested, "faults");
        assert!(c.iter().any(|p| p.ends_with("server/faults.rs")));
        assert!(c.iter().any(|p| p.ends_with("server/faults/mod.rs")));
    }
}

//! Workspace call graph and the reachability rules that run over it.
//!
//! The lexical rules in [`crate::rules`] see one file at a time; the three
//! properties the paper's hot loop actually depends on — allocation-free,
//! panic-free, deadlock-free — are *whole-program* properties. This module
//! stitches the per-file [`crate::parser`] output into one graph:
//!
//! * **nodes** — every `fn` item in library (non-test, non-bin) sources;
//! * **edges** — heuristic call resolution: a free call binds to free fns
//!   of that name, a method call to methods of that name anywhere in the
//!   workspace, a `Qual::name` path call to methods whose `impl` target is
//!   `Qual` (falling back to free fns for module paths). Unresolvable
//!   names (std, dependencies) are leaves.
//!
//! Over it run three passes (rule semantics in DESIGN.md §17):
//!
//! * `hotpath-no-alloc` / `hotpath-no-panic` — BFS from `// AUDIT: hotpath`
//!   roots, skipping `// AUDIT: cold` functions and regions, then scan
//!   every reached function for allocating calls, panicking calls, and
//!   unjustified scalar indexing;
//! * `lock-order` — per-function lock-acquisition sites (`.lock()` method
//!   calls and calls to workspace `lock` shims), hold spans to the end of
//!   the enclosing block, acquired-set propagation through the graph to a
//!   fixpoint, and a report for any lock pair observed in both orders.
//!
//! The resolver over-approximates on purpose: a false edge costs an
//! annotation with a written reason; a missed edge costs a deadlock or a
//! page fault in the benchmark. Escapes are per-site and auditable:
//! `// AUDIT: cold` regions, `// AUDIT: allow(<rule>) <why>` comments,
//! `// INDEX: <invariant>` for subscripts — all spelled out in
//! CONTRIBUTING.md.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::lexer::Lexed;
use crate::parser::{self, CallKind, CallSite, ParsedFile};
use crate::rules::{Rule, Violation};

/// One source file prepared for graph analysis.
pub struct GraphFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    pub lexed: Lexed,
    pub parsed: ParsedFile,
    /// 0-based line spans of `#[cfg(test)]` items in this file.
    pub test_regions: Vec<(usize, usize)>,
    /// Whether this file's functions join the graph (library source that
    /// is neither a bin target nor an out-of-line test module).
    pub in_graph: bool,
    /// Workspace crate directory names this file's crate can actually call
    /// into — its transitive path-dependency cone, itself included. `None`
    /// disables the filter (fixtures without manifests). Name-based
    /// resolution alone would let `core` "call" the baselines crate the
    /// moment both define a method named `run`; the cone restores the
    /// dependency direction the compiler enforces.
    pub dep_cone: Option<BTreeSet<String>>,
}

/// The crate directory name a workspace-relative path belongs to
/// (`crates/core/src/plan.rs` → `core`; paths outside `crates/` get their
/// first segment).
fn crate_of_rel(rel: &str) -> &str {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        Some(first) => first,
        None => "",
    }
}

/// Output of the graph passes.
pub struct GraphReport {
    pub violations: Vec<Violation>,
    /// Qualified names (`Type::fn` or `fn`) of the annotated roots.
    pub hot_roots: Vec<String>,
    /// Qualified names of every function reachable from a root (roots
    /// included), sorted and deduplicated — the self-test asserts the
    /// paper's execute paths appear here.
    pub hot_reachable: Vec<String>,
}

/// Node id: (file index, fn index within that file).
type Nid = (usize, usize);

struct Graph<'a> {
    files: &'a [GraphFile],
    /// Per node: calls whose innermost enclosing fn is that node.
    calls: HashMap<Nid, Vec<usize>>,
    /// Per node: scalar index sites in that node.
    indexes: HashMap<Nid, Vec<usize>>,
    /// name → nodes with that fn name and an impl/trait target.
    methods: HashMap<&'a str, Vec<Nid>>,
    /// name → free-fn nodes with that name.
    frees: HashMap<&'a str, Vec<Nid>>,
    /// name → all nodes with that name (path-call fallback pool).
    all: HashMap<&'a str, Vec<Nid>>,
}

impl<'a> Graph<'a> {
    fn build(files: &'a [GraphFile]) -> Self {
        let mut g = Graph {
            files,
            calls: HashMap::new(),
            indexes: HashMap::new(),
            methods: HashMap::new(),
            frees: HashMap::new(),
            all: HashMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            if !file.in_graph {
                continue;
            }
            for (ni, f) in file.parsed.fns.iter().enumerate() {
                let nid = (fi, ni);
                g.all.entry(&f.name).or_default().push(nid);
                if f.self_ty.is_some() {
                    g.methods.entry(&f.name).or_default().push(nid);
                } else {
                    g.frees.entry(&f.name).or_default().push(nid);
                }
            }
            for (ci, c) in file.parsed.calls.iter().enumerate() {
                if let Some(ni) = file.parsed.fn_at(c.byte) {
                    g.calls.entry((fi, ni)).or_default().push(ci);
                }
            }
            for (ii, s) in file.parsed.indexes.iter().enumerate() {
                if let Some(ni) = file.parsed.fn_at(s.byte) {
                    g.indexes.entry((fi, ni)).or_default().push(ii);
                }
            }
        }
        g
    }

    fn fn_of(&self, nid: Nid) -> &parser::FnItem {
        &self.files[nid.0].parsed.fns[nid.1]
    }

    fn file_of(&self, nid: Nid) -> &GraphFile {
        &self.files[nid.0]
    }

    /// Whether a node is test code (its header sits in a `#[cfg(test)]`
    /// span) — such fns never join reachability or lock analysis.
    fn is_test_fn(&self, nid: Nid) -> bool {
        let file = self.file_of(nid);
        let line = self.fn_of(nid).header_line;
        file.test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// Whether a node participates in traversal at all.
    fn traversable(&self, nid: Nid) -> bool {
        !self.is_test_fn(nid) && !self.fn_of(nid).cold
    }

    /// Resolves one call site in `from` to workspace nodes, keeping only
    /// targets inside the caller's crate-dependency cone. Unknown names
    /// resolve to nothing — they are std/dependency leaves by construction.
    fn resolve(&self, from: Nid, call: &CallSite) -> Vec<Nid> {
        let mut out = self.resolve_by_name(call);
        if let Some(cone) = &self.file_of(from).dep_cone {
            out.retain(|&t| cone.contains(crate_of_rel(&self.file_of(t).rel)));
        }
        out
    }

    fn resolve_by_name(&self, call: &CallSite) -> Vec<Nid> {
        match &call.kind {
            CallKind::Free => self.frees.get(call.name.as_str()).cloned().unwrap_or_default(),
            CallKind::Method { .. } => {
                self.methods.get(call.name.as_str()).cloned().unwrap_or_default()
            }
            CallKind::Path { qual } => {
                let pool = self.all.get(call.name.as_str()).cloned().unwrap_or_default();
                let matched: Vec<Nid> = pool
                    .iter()
                    .copied()
                    .filter(|&n| self.fn_of(n).self_ty.as_deref() == Some(qual.as_str()))
                    .collect();
                if !matched.is_empty() {
                    matched
                } else {
                    // `module::helper(...)` — a free fn behind a module
                    // path; methods without a matching impl target stay
                    // unbound rather than edge to every same-named method.
                    pool.into_iter()
                        .filter(|&n| self.fn_of(n).self_ty.is_none())
                        .collect()
                }
            }
            CallKind::Macro => Vec::new(),
        }
    }
}

/// Runs all graph passes over the prepared files.
pub fn analyze(files: &[GraphFile]) -> GraphReport {
    let g = Graph::build(files);
    let mut violations = Vec::new();

    // ---- Reachability from hot roots ------------------------------------
    let mut roots: Vec<Nid> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !file.in_graph {
            continue;
        }
        for (ni, f) in file.parsed.fns.iter().enumerate() {
            if f.hot && g.traversable((fi, ni)) {
                roots.push((fi, ni));
            }
        }
    }
    roots.sort();

    // parent edge for witness paths: node → (caller, 1-based call line)
    let mut parent: HashMap<Nid, Option<(Nid, usize)>> = HashMap::new();
    let mut queue: VecDeque<Nid> = VecDeque::new();
    for &r in &roots {
        parent.insert(r, None);
        queue.push_back(r);
    }
    while let Some(n) = queue.pop_front() {
        let file = g.file_of(n);
        for &ci in g.calls.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
            let call = &file.parsed.calls[ci];
            if file.parsed.in_cold_region(call.line) {
                continue;
            }
            for t in g.resolve(n, call) {
                if g.traversable(t) && !parent.contains_key(&t) {
                    parent.insert(t, Some((n, call.line + 1)));
                    queue.push_back(t);
                }
            }
        }
    }

    // ---- hotpath-no-alloc / hotpath-no-panic over the reached set -------
    let mut reached: Vec<Nid> = parent.keys().copied().collect();
    reached.sort();
    for &n in &reached {
        let file = g.file_of(n);
        let via = witness(&g, &parent, n);
        for &ci in g.calls.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
            let call = &file.parsed.calls[ci];
            if file.parsed.in_cold_region(call.line) {
                continue;
            }
            if let Some(what) = alloc_call(call) {
                if !excused(&file.lexed, call.line, &["AUDIT: allow(hotpath-no-alloc)"]) {
                    violations.push(Violation {
                        file: file.rel.clone(),
                        line: call.line + 1,
                        rule: Rule::HotpathNoAlloc,
                        msg: format!(
                            "{what} on the hot path ({via}); move it behind \
                             `// AUDIT: cold` or justify with \
                             `// AUDIT: allow(hotpath-no-alloc) <why>`"
                        ),
                    });
                }
            }
            if let Some(what) = panic_call(call) {
                if !excused(&file.lexed, call.line, &["AUDIT: allow(hotpath-no-panic)"]) {
                    violations.push(Violation {
                        file: file.rel.clone(),
                        line: call.line + 1,
                        rule: Rule::HotpathNoPanic,
                        msg: format!(
                            "{what} on the hot path ({via}); return a typed error \
                             or justify with `// AUDIT: allow(hotpath-no-panic) <why>`"
                        ),
                    });
                }
            }
        }
        for &ii in g.indexes.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
            let site = &file.parsed.indexes[ii];
            if file.parsed.in_cold_region(site.line) {
                continue;
            }
            if excused(
                &file.lexed,
                site.line,
                &["INDEX:", "AUDIT: allow(hotpath-no-panic)"],
            ) {
                continue;
            }
            violations.push(Violation {
                file: file.rel.clone(),
                line: site.line + 1,
                rule: Rule::HotpathNoPanic,
                msg: format!(
                    "scalar `[]` indexing on the hot path ({via}) can panic; \
                     add an `// INDEX: <why in bounds>` justification or use \
                     get/range slicing"
                ),
            });
        }
    }

    // ---- lock-order over every library fn -------------------------------
    lock_order(&g, &mut violations);

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    let qualify = |n: &Nid| {
        format!("{} ({})", g.fn_of(*n).qualified(), g.file_of(*n).rel)
    };
    GraphReport {
        violations,
        hot_roots: roots.iter().map(|n| g.fn_of(*n).qualified()).collect(),
        hot_reachable: {
            let mut v: Vec<String> = reached.iter().map(|n| g.fn_of(*n).qualified()).collect();
            v.sort();
            v.dedup();
            let _ = qualify;
            v
        },
    }
}

/// `root -> … -> fn` witness string for reports (truncated to 4 hops).
fn witness(g: &Graph<'_>, parent: &HashMap<Nid, Option<(Nid, usize)>>, n: Nid) -> String {
    let mut chain = vec![g.fn_of(n).qualified()];
    let mut cur = n;
    while let Some(Some((p, _))) = parent.get(&cur) {
        chain.push(g.fn_of(*p).qualified());
        cur = *p;
        if chain.len() > 8 {
            break;
        }
    }
    chain.reverse();
    if chain.len() > 4 {
        let skipped = chain.len() - 4;
        let head = chain[0].clone();
        let tail = chain[chain.len() - 3..].join(" -> ");
        format!("reachable via {head} -> …{skipped} more… -> {tail}")
    } else {
        format!("reachable via {}", chain.join(" -> "))
    }
}

/// Method names that allocate on any owned container. Over-approximate by
/// design: `.clone()` on a `Range` is cheap, but the rule asks you to say
/// so at the site rather than trust the reader to know the type.
const ALLOC_METHODS: &[&str] = &[
    "to_vec", "to_owned", "to_string", "clone", "push", "push_str", "reserve",
    "extend", "append", "insert", "collect", "repeat", "join", "into_boxed_slice",
];

/// `Qual::name` constructors that allocate.
const ALLOC_PATH_QUALS: &[&str] = &[
    "Box", "Vec", "String", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
    "Arc", "Rc",
];
const ALLOC_PATH_FNS: &[&str] = &["new", "with_capacity", "from", "from_iter"];

const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Classifies an allocating call; `None` when benign.
fn alloc_call(call: &CallSite) -> Option<String> {
    match &call.kind {
        CallKind::Method { .. } => {
            if ALLOC_METHODS.contains(&call.name.as_str()) {
                Some(format!("allocating call `.{}()`", call.name))
            } else {
                None
            }
        }
        CallKind::Path { qual } => {
            // `Arc::clone` / `Rc::clone` are refcount bumps, not allocs.
            if call.name == "clone" && (qual == "Arc" || qual == "Rc") {
                return None;
            }
            if ALLOC_PATH_QUALS.contains(&qual.as_str())
                && ALLOC_PATH_FNS.contains(&call.name.as_str())
            {
                Some(format!("allocating call `{qual}::{}`", call.name))
            } else {
                None
            }
        }
        CallKind::Macro => {
            if ALLOC_MACROS.contains(&call.name.as_str()) {
                Some(format!("allocating macro `{}!`", call.name))
            } else {
                None
            }
        }
        CallKind::Free => None,
    }
}

/// Macros that unwind. `debug_assert*` stays permitted: the workspace CI
/// builds hot-path tests with debug assertions on, and release builds
/// compile them out.
const PANIC_MACROS: &[&str] = &[
    "panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne",
];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Classifies a panicking call; `None` when benign.
fn panic_call(call: &CallSite) -> Option<String> {
    match &call.kind {
        CallKind::Macro if PANIC_MACROS.contains(&call.name.as_str()) => {
            Some(format!("panicking macro `{}!`", call.name))
        }
        CallKind::Method { .. } if PANIC_METHODS.contains(&call.name.as_str()) => {
            Some(format!("panicking call `.{}()`", call.name))
        }
        _ => None,
    }
}

/// `tags` found in the comment on the site's line or in the contiguous
/// comment/attribute block above (same adjacency discipline as `// SAFETY:`).
fn excused(lexed: &Lexed, line: usize, tags: &[&str]) -> bool {
    let hit = |l: usize| {
        let c = lexed.comment_line(l);
        tags.iter().any(|t| c.contains(t))
    };
    if hit(line) {
        return true;
    }
    let mut l = line;
    let mut budget = 8usize;
    while l > 0 && budget > 0 {
        l -= 1;
        budget -= 1;
        if hit(l) {
            return true;
        }
        let code = lexed.code_line(l).trim().to_owned();
        if code.is_empty() || code.starts_with("#[") || code.starts_with("#![") {
            continue;
        }
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            return false;
        }
    }
    false
}

/// One lock acquisition inside a function body.
struct LockSite {
    /// Heuristic lock identity (receiver field name, shim argument, or
    /// producer fn name) — see DESIGN.md §17 for the caveats.
    id: String,
    byte: usize,
    line: usize,
    /// Hold span: acquisition byte to the end of the enclosing block. An
    /// over-approximation for temporaries, exact for `let`-bound guards.
    until: usize,
}

/// The lock-order pass. Lock identity is textual; ordered pairs are
/// collected per function (direct site → direct site, and direct site →
/// transitive acquisitions of calls made while held), then any identity
/// pair observed in both orders anywhere in the workspace is flagged once.
fn lock_order(g: &Graph<'_>, out: &mut Vec<Violation>) {
    // Shims: workspace free fns named `lock` / `lock_unpoisoned` that
    // adapt `Mutex::lock` (poison recovery). Their internal `.lock()` on a
    // parameter would alias every caller's lock to one name, so the shim's
    // own sites are skipped and each *call* to it counts as an acquisition
    // of its argument.
    let shim_name = |n: &str| n == "lock" || n == "lock_unpoisoned";
    let is_shim = |nid: Nid| {
        let f = g.fn_of(nid);
        shim_name(&f.name) && f.self_ty.is_none()
    };

    // Lock propagation resolves calls more tightly than reachability does:
    // a method name shared by several unrelated types (`get`, `len`,
    // `wait`, `clear`, …) would alias their lock sets together and
    // manufacture phantom inversions, so ambiguous method edges and
    // self-recursion are dropped here. Reachability keeps the full
    // over-approximation — a spurious "hot" edge only widens scrutiny,
    // while a spurious lock chain fails the build.
    let lock_edges = |nid: Nid, call: &CallSite| -> Vec<Nid> {
        let mut ts = g.resolve(nid, call);
        ts.retain(|&t| t != nid);
        if matches!(call.kind, CallKind::Method { .. }) && ts.len() > 1 {
            return Vec::new();
        }
        ts
    };

    // Direct acquisition sites per node.
    let mut sites: HashMap<Nid, Vec<LockSite>> = HashMap::new();
    for (fi, file) in g.files.iter().enumerate() {
        if !file.in_graph {
            continue;
        }
        let bytes = file.lexed.scrubbed.as_bytes();
        for (ni, _) in file.parsed.fns.iter().enumerate() {
            let nid = (fi, ni);
            if !g.traversable(nid) || is_shim(nid) {
                continue;
            }
            let mut v = Vec::new();
            for &ci in g.calls.get(&nid).map(Vec::as_slice).unwrap_or(&[]) {
                let call = &file.parsed.calls[ci];
                if excused(&file.lexed, call.line, &["AUDIT: allow(lock-order)"]) {
                    continue;
                }
                let id = match &call.kind {
                    CallKind::Method { recv } if call.name == "lock" => recv.clone(),
                    CallKind::Free | CallKind::Path { .. } if shim_name(&call.name) => {
                        // Only calls that bind to a workspace shim count.
                        if g.resolve(nid, call).iter().any(|&t| is_shim(t)) {
                            first_arg_ident(bytes, call.byte + call.name.len())
                        } else {
                            String::new()
                        }
                    }
                    _ => String::new(),
                };
                if id.is_empty() {
                    continue;
                }
                let until = parser::enclosing_open_brace(bytes, call.byte)
                    .map(|open| parser::match_brace(bytes, open))
                    .unwrap_or(bytes.len());
                v.push(LockSite {
                    id,
                    byte: call.byte,
                    line: call.line,
                    until,
                });
            }
            if !v.is_empty() {
                sites.insert(nid, v);
            }
        }
    }

    // Transitive acquired-id sets to a fixpoint (cycle-safe: sets only grow).
    let mut acquires: HashMap<Nid, BTreeSet<String>> = HashMap::new();
    for (nid, v) in &sites {
        acquires.insert(*nid, v.iter().map(|s| s.id.clone()).collect());
    }
    loop {
        let mut changed = false;
        for (fi, file) in g.files.iter().enumerate() {
            if !file.in_graph {
                continue;
            }
            for (ni, _) in file.parsed.fns.iter().enumerate() {
                let nid = (fi, ni);
                if !g.traversable(nid) {
                    continue;
                }
                let mut add: BTreeSet<String> = BTreeSet::new();
                for &ci in g.calls.get(&nid).map(Vec::as_slice).unwrap_or(&[]) {
                    let call = &file.parsed.calls[ci];
                    for t in lock_edges(nid, call) {
                        if let Some(set) = acquires.get(&t) {
                            add.extend(set.iter().cloned());
                        }
                    }
                }
                if add.is_empty() {
                    continue;
                }
                let entry = acquires.entry(nid).or_default();
                let before = entry.len();
                entry.extend(add);
                if entry.len() != before {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Ordered pairs with a representative site for the report.
    let mut pairs: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
    for (nid, v) in &sites {
        let file = g.file_of(*nid);
        let fn_name = g.fn_of(*nid).qualified();
        for a in v {
            // Direct: another lock taken while `a` is held.
            for b in v {
                if b.byte > a.byte && b.byte <= a.until && a.id != b.id {
                    pairs
                        .entry((a.id.clone(), b.id.clone()))
                        .or_insert_with(|| (file.rel.clone(), a.line + 1, fn_name.clone()));
                }
            }
            // Transitive: a call made while `a` is held acquires callee locks.
            for &ci in g.calls.get(nid).map(Vec::as_slice).unwrap_or(&[]) {
                let call = &file.parsed.calls[ci];
                if call.byte <= a.byte || call.byte > a.until {
                    continue;
                }
                for t in lock_edges(*nid, call) {
                    if let Some(set) = acquires.get(&t) {
                        for id in set {
                            if *id != a.id {
                                pairs.entry((a.id.clone(), id.clone())).or_insert_with(|| {
                                    (file.rel.clone(), a.line + 1, fn_name.clone())
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Both orders present → one violation per unordered pair.
    let mut flagged: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), (file, line, fn_name)) in &pairs {
        let rev = (b.clone(), a.clone());
        if !pairs.contains_key(&rev) {
            continue;
        }
        let key = if a < b {
            (a.clone(), b.clone())
        } else {
            (b.clone(), a.clone())
        };
        if !flagged.insert(key) {
            continue;
        }
        let (rfile, rline, rfn) = &pairs[&rev];
        out.push(Violation {
            file: file.clone(),
            line: *line,
            rule: Rule::LockOrder,
            msg: format!(
                "locks `{a}` then `{b}` acquired here (in {fn_name}) but in the \
                 opposite order at {rfile}:{rline} (in {rfn}); pick one order or \
                 justify with `// AUDIT: allow(lock-order) <why>`"
            ),
        });
    }
}

/// Last identifier of a call's first argument — the lock a `lock(&…)` shim
/// call acquires. `lock(&self.inner.queue)` → `queue`.
fn first_arg_ident(bytes: &[u8], after_name: usize) -> String {
    let mut j = after_name;
    while j < bytes.len() && bytes[j] != b'(' {
        if bytes[j] == b';' || bytes[j] == b'\n' {
            return String::new();
        }
        j += 1;
    }
    let mut depth = 0usize;
    let mut end = j;
    while end < bytes.len() {
        match bytes[end] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b',' if depth == 1 => break,
            _ => {}
        }
        end += 1;
    }
    let arg = &bytes[j + 1..end.min(bytes.len())];
    // Last identifier in the argument text.
    let mut last = String::new();
    let mut k = 0usize;
    while k < arg.len() {
        if arg[k].is_ascii_alphabetic() || arg[k] == b'_' {
            let s = k;
            while k < arg.len() && (arg[k].is_ascii_alphanumeric() || arg[k] == b'_') {
                k += 1;
            }
            let ident = String::from_utf8_lossy(&arg[s..k]).into_owned();
            if ident != "self" && ident != "Self" && ident != "mut" && ident != "ref" {
                last = ident;
            }
        } else {
            k += 1;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(rel: &str, src: &str) -> GraphFile {
        let lexed = lex(src);
        let parsed = parser::parse(&lexed);
        GraphFile {
            rel: rel.to_owned(),
            test_regions: crate::rules::test_regions(&lexed),
            lexed,
            parsed,
            in_graph: true,
            dep_cone: None,
        }
    }

    #[test]
    fn reachability_crosses_files_and_impls() {
        let a = file(
            "crates/a/src/lib.rs",
            "pub struct Plan;\nimpl Plan {\n    // AUDIT: hotpath\n    pub fn execute(&self) { helper(); }\n}\nfn helper() { crate::b::leafy(); }\n",
        );
        let b = file("crates/b/src/lib.rs", "pub fn leafy() {}\n");
        let r = analyze(&[a, b]);
        assert_eq!(r.hot_roots, vec!["Plan::execute"]);
        assert!(r.hot_reachable.contains(&"helper".to_owned()));
        assert!(r.hot_reachable.contains(&"leafy".to_owned()));
    }

    #[test]
    fn alloc_in_reachable_fn_is_flagged_and_cold_region_excuses() {
        let a = file(
            "crates/a/src/lib.rs",
            "// AUDIT: hotpath\npub fn run(v: &mut Vec<u32>) {\n    v.push(1);\n    if v.is_empty() {\n        // AUDIT: cold — refill path, once per epoch.\n        v.reserve(64);\n    }\n}\n",
        );
        let r = analyze(&[a]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::HotpathNoAlloc);
        assert_eq!(r.violations[0].line, 3);
    }

    #[test]
    fn unwrap_and_panic_reachable_are_flagged() {
        let a = file(
            "crates/a/src/lib.rs",
            "// AUDIT: hotpath\npub fn run(x: Option<u32>) -> u32 {\n    deep(x)\n}\nfn deep(x: Option<u32>) -> u32 {\n    if x.is_none() { panic!(\"boom\") }\n    x.unwrap()\n}\n",
        );
        let r = analyze(&[a]);
        let rules: Vec<_> = r.violations.iter().map(|v| (v.rule, v.line)).collect();
        assert!(rules.contains(&(Rule::HotpathNoPanic, 6)), "{rules:?}");
        assert!(rules.contains(&(Rule::HotpathNoPanic, 7)), "{rules:?}");
    }

    #[test]
    fn index_needs_justification_ranges_do_not() {
        let a = file(
            "crates/a/src/lib.rs",
            "// AUDIT: hotpath\npub fn run(v: &[u32], i: usize) -> u32 {\n    let s = &v[..4];\n    // INDEX: i < len checked by the planner.\n    let a = s[i];\n    v[i + 1]\n}\n",
        );
        let r = analyze(&[a]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 6);
        assert_eq!(r.violations[0].rule, Rule::HotpathNoPanic);
    }

    #[test]
    fn cold_fn_annotation_prunes_the_subtree() {
        let a = file(
            "crates/a/src/lib.rs",
            "// AUDIT: hotpath\npub fn run() { fallback(); }\n// AUDIT: cold — error path only.\nfn fallback() { let mut v = Vec::new(); v.push(1); }\n",
        );
        let r = analyze(&[a]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(!r.hot_reachable.contains(&"fallback".to_owned()));
    }

    #[test]
    fn lock_inversion_across_functions_is_flagged() {
        let a = file(
            "crates/a/src/lib.rs",
            "use std::sync::Mutex;\npub struct S { q: Mutex<u32>, r: Mutex<u32> }\nimpl S {\n    pub fn fwd(&self) {\n        let _a = self.q.lock();\n        let _b = self.r.lock();\n    }\n    pub fn rev(&self) {\n        let _b = self.r.lock();\n        let _a = self.q.lock();\n    }\n}\n",
        );
        let r = analyze(&[a]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::LockOrder);
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let a = file(
            "crates/a/src/lib.rs",
            "use std::sync::Mutex;\npub struct S { q: Mutex<u32>, r: Mutex<u32> }\nimpl S {\n    pub fn one(&self) {\n        let _a = self.q.lock();\n        let _b = self.r.lock();\n    }\n    pub fn two(&self) {\n        let _a = self.q.lock();\n        let _b = self.r.lock();\n    }\n}\n",
        );
        let r = analyze(&[a]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn lock_inversion_through_a_callee_is_flagged() {
        let a = file(
            "crates/a/src/lib.rs",
            "use std::sync::Mutex;\npub struct S { q: Mutex<u32>, r: Mutex<u32> }\nimpl S {\n    pub fn fwd(&self) {\n        let _a = self.q.lock();\n        self.take_r();\n    }\n    fn take_r(&self) {\n        let _b = self.r.lock();\n    }\n    pub fn rev(&self) {\n        let _b = self.r.lock();\n        let _a = self.q.lock();\n    }\n}\n",
        );
        let r = analyze(&[a]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::LockOrder);
    }

    #[test]
    fn shim_calls_use_the_argument_identity() {
        let a = file(
            "crates/a/src/lib.rs",
            "use std::sync::{Mutex, MutexGuard};\nfn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n    m.lock().unwrap_or_else(|p| p.into_inner())\n}\npub struct S { q: Mutex<u32>, r: Mutex<u32> }\nimpl S {\n    pub fn fwd(&self) {\n        let _a = lock(&self.q);\n        let _b = lock(&self.r);\n    }\n    pub fn rev(&self) {\n        let _b = lock(&self.r);\n        let _a = lock(&self.q);\n    }\n}\n",
        );
        let r = analyze(&[a]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::LockOrder);
        assert!(r.violations[0].msg.contains('q') && r.violations[0].msg.contains('r'));
    }

    #[test]
    fn test_fns_never_join_the_graph() {
        let a = file(
            "crates/a/src/lib.rs",
            "// AUDIT: hotpath\npub fn run() {}\n#[cfg(test)]\nmod tests {\n    // AUDIT: hotpath\n    fn fake_root() { let mut v = Vec::new(); v.push(1); }\n    #[test]\n    fn t() { fake_root(); super::run(); }\n}\n",
        );
        let r = analyze(&[a]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(!r.hot_reachable.contains(&"fake_root".to_owned()));
    }

    #[test]
    fn macro_bodies_do_not_create_false_edges() {
        // macro_rules! bodies mention identifiers that look like calls;
        // the extractor sees them, but resolution binds only to real fns,
        // and an unreachable mention must not mark `secret` hot.
        let a = file(
            "crates/a/src/lib.rs",
            "macro_rules! m { ($x:expr) => { other_name($x) }; }\n// AUDIT: hotpath\npub fn run() { let _ = 1; }\nfn secret(v: &mut Vec<u32>) { v.push(1); }\n",
        );
        let r = analyze(&[a]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(!r.hot_reachable.contains(&"secret".to_owned()));
    }
}

//! CLI for the in-tree unsafe-code auditor.
//!
//! ```text
//! cargo run -p ndirect-audit               # audit the workspace, exit 1 on violations
//! cargo run -p ndirect-audit -- --list-rules
//! cargo run -p ndirect-audit -- --root /path/to/tree
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use ndirect_audit::rules::Rule;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut root = None;
    let mut quiet = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<15} {}", rule.id(), rule.describe());
                }
                return 0;
            }
            "--root" => match iter.next() {
                Some(dir) => root = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return 2;
                }
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "ndirect-audit: repo-specific soundness rules over the workspace\n\
                     \n\
                     USAGE: ndirect-audit [--root DIR] [--list-rules] [--quiet]\n\
                     \n\
                     Exit codes: 0 clean, 1 violations, 2 usage/IO error.\n\
                     Waivers: audit.allow at the workspace root, one per line:\n\
                     \x20   <rule-id> <path> -- <reason>"
                );
                return 0;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return 2;
            }
        }
    }
    let root = root.unwrap_or_else(ndirect_audit::workspace_root);
    let report = match ndirect_audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed to run: {e}");
            return 2;
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    if !quiet {
        for v in &report.waived {
            println!("waived: {v}");
        }
        eprintln!(
            "audited {} files: {} violation(s), {} waived",
            report.files_scanned,
            report.violations.len(),
            report.waived.len()
        );
    }
    i32::from(!report.is_clean())
}

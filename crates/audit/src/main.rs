//! CLI for the in-tree unsafe-code auditor.
//!
//! ```text
//! cargo run -p ndirect-audit               # audit the workspace, exit 1 on violations
//! cargo run -p ndirect-audit -- --list-rules
//! cargo run -p ndirect-audit -- --root /path/to/tree
//! cargo run -p ndirect-audit -- --json     # machine-readable findings on stdout
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use ndirect_audit::rules::{Rule, Violation};
use ndirect_support::json::Json;

fn main() {
    std::process::exit(run(std::env::args().skip(1).collect()));
}

fn run(args: Vec<String>) -> i32 {
    let mut root = None;
    let mut quiet = false;
    let mut json = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<17} {}", rule.id(), rule.describe());
                }
                return 0;
            }
            "--root" => match iter.next() {
                Some(dir) => root = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("--root requires a directory argument");
                    return 2;
                }
            },
            "--quiet" => quiet = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "ndirect-audit: repo-specific soundness rules over the workspace\n\
                     \n\
                     USAGE: ndirect-audit [--root DIR] [--list-rules] [--quiet] [--json]\n\
                     \n\
                     Exit codes: 0 clean, 1 violations, 2 usage/IO error.\n\
                     --json prints a machine-readable findings document on stdout.\n\
                     Waivers: audit.allow at the workspace root, one per line:\n\
                     \x20   <rule-id> <path> -- <reason>"
                );
                return 0;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return 2;
            }
        }
    }
    let root = root.unwrap_or_else(ndirect_audit::workspace_root);
    let report = match ndirect_audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed to run: {e}");
            return 2;
        }
    };
    if json {
        println!("{}", report_json(&report, &root).pretty());
        return i32::from(!report.is_clean());
    }
    for v in &report.violations {
        println!("{v}");
    }
    if !quiet {
        for v in &report.waived {
            println!("waived: {v}");
        }
        eprintln!(
            "audited {} files: {} violation(s), {} waived",
            report.files_scanned,
            report.violations.len(),
            report.waived.len()
        );
    }
    i32::from(!report.is_clean())
}

/// The `--json` findings document: a stable, versioned shape for CI
/// artifacts and the GitHub problem-matcher pipeline.
fn report_json(report: &ndirect_audit::AuditReport, root: &std::path::Path) -> Json {
    let finding = |v: &Violation| {
        Json::Obj(vec![
            ("file".to_owned(), Json::str(v.file.clone())),
            ("line".to_owned(), Json::usize(v.line)),
            ("rule".to_owned(), Json::str(v.rule.id())),
            ("message".to_owned(), Json::str(v.msg.clone())),
        ])
    };
    Json::Obj(vec![
        ("version".to_owned(), Json::usize(1)),
        (
            "root".to_owned(),
            Json::str(root.display().to_string()),
        ),
        (
            "files_scanned".to_owned(),
            Json::usize(report.files_scanned),
        ),
        (
            "violations".to_owned(),
            Json::Arr(report.violations.iter().map(finding).collect()),
        ),
        (
            "waived".to_owned(),
            Json::Arr(report.waived.iter().map(finding).collect()),
        ),
        (
            "hot_roots".to_owned(),
            Json::Arr(report.hot_roots.iter().map(Json::str).collect()),
        ),
        (
            "hot_reachable".to_owned(),
            Json::Arr(report.hot_reachable.iter().map(Json::str).collect()),
        ),
    ])
}

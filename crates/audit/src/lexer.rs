//! A minimal, comment- and string-aware Rust lexer.
//!
//! The auditor's rules are token-level ("is there an `unsafe` keyword
//! here?", "is this `.unwrap()` call in test code?"), so it does not need a
//! real parser — it needs to *never* match tokens inside comments, string
//! literals, char literals, or raw strings. This module classifies every
//! byte of a source file and produces:
//!
//! * a **scrubbed** copy of the source in which every comment and literal
//!   body is replaced by spaces (newlines preserved), so token scans over
//!   it cannot produce false positives; and
//! * the **comment text per line**, so rules can look for `// SAFETY:` /
//!   `// CAST:` justifications adjacent to a flagged token.
//!
//! Handled syntax: line comments, nested block comments, string literals
//! with escapes, raw strings with any number of `#`s (`r#""#`), byte and
//! byte-raw strings (`b"…"`, `br#"…"#`), char and byte-char literals with
//! escapes, and lifetimes (`'a`) which must *not* open a char literal.

/// Lexing output for one source file. Both views have the same line
/// structure as the original text.
pub struct Lexed {
    /// Source with comment and literal bodies blanked to spaces.
    pub scrubbed: String,
    /// Comment text (line and block) appearing on each 0-based line.
    pub comments: Vec<String>,
}

impl Lexed {
    /// The scrubbed text of 0-based line `i` (empty past EOF).
    pub fn code_line(&self, i: usize) -> &str {
        self.scrubbed.lines().nth(i).unwrap_or("")
    }

    /// The comment text on 0-based line `i` (empty when none).
    pub fn comment_line(&self, i: usize) -> &str {
        self.comments.get(i).map_or("", String::as_str)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the depth rides along.
    BlockComment(u32),
    Str,
    /// Raw string with this many `#`s in its delimiter.
    RawStr(u32),
    CharLit,
}

/// Classifies `src` byte-for-byte. Never fails: unterminated literals and
/// comments simply run to EOF in their state (the compiler will reject the
/// file; the auditor still must not panic on it).
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut scrubbed = Vec::with_capacity(bytes.len());
    let n_lines = src.lines().count().max(1);
    let mut comments: Vec<String> = vec![String::new(); n_lines];
    let mut line = 0usize;
    let mut state = State::Code;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            scrubbed.push(b'\n');
            line += 1;
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    scrubbed.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    scrubbed.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    scrubbed.push(b' ');
                    i += 1;
                } else if let Some(hashes) = raw_string_open(bytes, i) {
                    // `r"`, `r#"`, `br##"` … — blank the whole prefix.
                    let prefix = prefix_len(bytes, i) + hashes as usize + 1;
                    state = State::RawStr(hashes);
                    scrubbed.extend(std::iter::repeat_n(b' ', prefix));
                    i += prefix;
                } else if b == b'\'' {
                    // Lifetime (`'a`, `'_`, `'static`) vs char literal
                    // (`'x'`, `'\n'`). A lifetime is `'` + ident char(s)
                    // NOT followed by a closing quote.
                    let next = bytes.get(i + 1).copied();
                    let after = bytes.get(i + 2).copied();
                    let is_char = match next {
                        Some(b'\\') => true,
                        Some(c) if is_ident(c) => after == Some(b'\''),
                        Some(_) => true, // e.g. '(' — punctuation char literal
                        None => false,
                    };
                    if is_char {
                        state = State::CharLit;
                        scrubbed.push(b' ');
                        i += 1;
                    } else {
                        scrubbed.push(b);
                        i += 1;
                    }
                } else {
                    scrubbed.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                comments[line.min(n_lines - 1)].push(b as char);
                scrubbed.push(b' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    scrubbed.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    scrubbed.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    comments[line.min(n_lines - 1)].push(b as char);
                    scrubbed.push(b' ');
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && bytes.get(i + 1) == Some(&b'\n') {
                    // `\` line continuation: consume only the backslash so
                    // the top-of-loop newline handling keeps line numbers
                    // aligned with the original text.
                    scrubbed.push(b' ');
                    i += 1;
                } else if b == b'\\' && i + 1 < bytes.len() {
                    scrubbed.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    if b == b'"' {
                        state = State::Code;
                    }
                    scrubbed.push(b' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(bytes, i, hashes) {
                    scrubbed.extend(std::iter::repeat_n(b' ', 1 + hashes as usize));
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    scrubbed.push(b' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if b == b'\\' && bytes.get(i + 1) == Some(&b'\n') {
                    // Malformed source, but line numbers must stay aligned.
                    scrubbed.push(b' ');
                    i += 1;
                } else if b == b'\\' && i + 1 < bytes.len() {
                    scrubbed.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    if b == b'\'' {
                        state = State::Code;
                    }
                    scrubbed.push(b' ');
                    i += 1;
                }
            }
        }
    }

    // Scrubbing replaces multi-byte UTF-8 only inside literals/comments
    // (blanked to ASCII spaces); code bytes are copied verbatim, so the
    // result is valid UTF-8 whenever the input was.
    let scrubbed = String::from_utf8(scrubbed).unwrap_or_default();
    Lexed { scrubbed, comments }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// If position `i` opens a raw (byte) string (`r"`, `r#"`, `br##"`, …),
/// returns the number of `#`s; `None` otherwise. The `r` must not be the
/// tail of an identifier.
fn raw_string_open(bytes: &[u8], i: usize) -> Option<u32> {
    let b = bytes[i];
    let start = if b == b'r' {
        i
    } else if b == b'b' && bytes.get(i + 1) == Some(&b'r') {
        i + 1
    } else {
        return None;
    };
    if i > 0 && is_ident(bytes[i - 1]) {
        return None;
    }
    let mut j = start + 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

/// Byte length of the raw-string prefix at `i` up to (excluding) the `#`s:
/// 1 for `r`, 2 for `br`.
fn prefix_len(bytes: &[u8], i: usize) -> usize {
    if bytes[i] == b'b' {
        2
    } else {
        1
    }
}

/// Whether the `"` at `i` is followed by `hashes` `#`s, closing the raw
/// string.
fn closes_raw(bytes: &[u8], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&b'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_scrubbed_and_recorded() {
        let l = lex("let x = 1; // SAFETY: fine\nlet y = 2;\n");
        assert!(l.code_line(0).contains("let x = 1;"));
        assert!(!l.code_line(0).contains("SAFETY"));
        assert!(l.comment_line(0).contains("SAFETY: fine"));
        assert_eq!(l.comment_line(1), "");
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let l = lex("let s = \"unsafe { static mut } .unwrap()\";\n");
        assert!(!l.scrubbed.contains("unsafe"));
        assert!(!l.scrubbed.contains("unwrap"));
        assert!(l.scrubbed.contains("let s ="));
    }

    #[test]
    fn string_line_continuations_preserve_line_structure() {
        // A `\` before the newline continues the string onto the next
        // line; the scrubbed view must keep the newline so every later
        // line number stays aligned with the original text.
        let l = lex("let s = \"one \\\n     two\";\nlet after = 1;\n");
        assert_eq!(l.scrubbed.lines().count(), 3);
        assert_eq!(l.code_line(2), "let after = 1;");
        assert!(!l.scrubbed.contains("two"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex("let s = r#\"a \" quote and unsafe\"#; let t = 1;\n");
        assert!(!l.scrubbed.contains("unsafe"));
        assert!(l.scrubbed.contains("let t = 1;"));
        // The degenerate empty raw string from the issue checklist.
        let l = lex("let e = r#\"\"#; unsafe { x() };\n");
        assert!(l.scrubbed.contains("unsafe"));
    }

    #[test]
    fn byte_raw_strings() {
        let l = lex("let s = br##\"unsafe\"## ; let u = 9;\n");
        assert!(!l.scrubbed.contains("unsafe"));
        assert!(l.scrubbed.contains("let u = 9;"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner unsafe */ still comment */ let z = 3;\n");
        assert!(!l.scrubbed.contains("unsafe"));
        assert!(l.scrubbed.contains("let z = 3;"));
        assert!(l.comment_line(0).contains("inner unsafe"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } // SAFETY: n/a\n";
        let l = lex(src);
        assert!(l.scrubbed.contains("&'a str"));
        assert!(l.comment_line(0).contains("SAFETY"));
    }

    #[test]
    fn char_literals_are_scrubbed() {
        let l = lex("let c = '\"'; let q = '\\''; unsafe { g() };\n");
        assert!(l.scrubbed.contains("unsafe"));
        assert!(!l.scrubbed.contains('"'));
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let l = lex("let ptr\" = 0;\n"); // not valid Rust; lexer must not panic
        assert!(l.scrubbed.contains("let ptr"));
        let l = lex("let var = 1; let s = \"x\";\n");
        assert!(l.scrubbed.contains("let var = 1"));
    }

    #[test]
    fn multiline_string_preserves_line_structure() {
        let src = "let s = \"one\ntwo unsafe\nthree\"; let after = 1;\n";
        let l = lex(src);
        assert_eq!(l.scrubbed.lines().count(), src.lines().count());
        assert!(!l.scrubbed.contains("unsafe"));
        assert!(l.code_line(2).contains("let after = 1;"));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("let s = \"never closed\n");
        lex("/* never closed\nmore\n");
        lex("let r = r#\"never closed\n");
    }
}

//! Fixture-based proof that the auditor catches what it claims to catch —
//! each rule gets a passing and a failing snippet — plus an end-to-end
//! seeded-violation run over a synthetic workspace (the property CI's
//! `soundness` job relies on: a bad diff cannot pass), waiver-file
//! round-trips, and the self-audit that keeps the live tree clean.

use std::path::{Path, PathBuf};

use ndirect_audit::rules::{check_file, FileKind, Rule};
use ndirect_audit::{audit_with_waivers, audit_workspace, lexer, waiver, workspace_root};

const LIB: FileKind = FileKind {
    library: true,
    hot_path: false,
};
const HOT: FileKind = FileKind {
    library: true,
    hot_path: true,
};
const TEST_ONLY: FileKind = FileKind {
    library: false,
    hot_path: false,
};

fn violations(src: &str, kind: FileKind) -> Vec<Rule> {
    check_file("fixture.rs", &lexer::lex(src), kind)
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

// ---- safety-comment ----------------------------------------------------

#[test]
fn unsafe_block_without_safety_comment_is_flagged() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(violations(src, LIB), vec![Rule::SafetyComment]);
}

#[test]
fn unsafe_block_with_safety_comment_passes() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn safety_comment_above_multiline_statement_counts() {
    // The comment sits above the statement *start*, two lines before the
    // `unsafe` token itself.
    let src = "pub fn f(p: *const u64) -> u64 {\n    // SAFETY: p valid per contract.\n    let v = some_long_call(1, 2)\n        + unsafe { *p };\n    v\n}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn unsafe_fn_accepts_doc_safety_section() {
    let src = "/// Does things.\n///\n/// # Safety\n/// `i < len`.\npub unsafe fn at(i: usize) {}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn unsafe_fn_pointer_type_is_not_a_site() {
    let src = "struct Job {\n    call: unsafe fn(*const (), usize),\n}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn safety_in_string_literal_does_not_satisfy_rule() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    let _s = \"// SAFETY: not a comment\";\n    unsafe { *p }\n}\n";
    assert_eq!(violations(src, LIB), vec![Rule::SafetyComment]);
}

#[test]
fn unsafe_inside_raw_string_is_not_a_site() {
    let src = "pub fn f() -> &'static str {\n    r#\"unsafe { *p } // looks scary, is data\"#\n}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn unsafe_inside_nested_block_comment_is_not_a_site() {
    let src = "/* outer /* unsafe { } */ still comment */\npub fn f() {}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn test_files_still_require_safety_comments() {
    let src = "fn t(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(violations(src, TEST_ONLY), vec![Rule::SafetyComment]);
}

// ---- no-unwrap ---------------------------------------------------------

#[test]
fn unwrap_in_library_code_is_flagged() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n";
    assert_eq!(violations(src, LIB), vec![Rule::NoUnwrap]);
}

#[test]
fn expect_in_library_code_is_flagged() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.expect(\"present\")\n}\n";
    assert_eq!(violations(src, LIB), vec![Rule::NoUnwrap]);
}

#[test]
fn unwrap_under_cfg_test_passes() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1).unwrap();\n    }\n}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn unwrap_or_variants_pass() {
    let src = "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap_or(0).max(v.unwrap_or_default())\n}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn unwrap_in_non_library_file_passes() {
    let src = "fn main() {\n    std::env::args().next().unwrap();\n}\n";
    assert_eq!(violations(src, TEST_ONLY), vec![]);
}

// ---- cast-justify ------------------------------------------------------

#[test]
fn narrowing_cast_in_hot_path_without_note_is_flagged() {
    let src = "pub fn f(x: usize) -> u32 {\n    x as u32\n}\n";
    assert_eq!(violations(src, HOT), vec![Rule::CastJustify]);
}

#[test]
fn narrowing_cast_with_cast_note_passes() {
    let src = "pub fn f(x: usize) -> u32 {\n    // CAST: x < 2^32 by construction (tile index).\n    x as u32\n}\n";
    assert_eq!(violations(src, HOT), vec![]);
}

#[test]
fn narrowing_cast_outside_hot_path_passes() {
    let src = "pub fn f(x: usize) -> u32 {\n    x as u32\n}\n";
    assert_eq!(violations(src, LIB), vec![]);
}

#[test]
fn widening_cast_in_hot_path_passes() {
    let src = "pub fn f(x: u32) -> u64 {\n    x as u64\n}\n";
    assert_eq!(violations(src, HOT), vec![]);
}

// ---- no-static-mut -----------------------------------------------------

#[test]
fn static_mut_is_flagged_everywhere() {
    let src = "static mut COUNTER: u64 = 0;\n";
    assert_eq!(violations(src, LIB), vec![Rule::NoStaticMut]);
    assert_eq!(violations(src, TEST_ONLY), vec![Rule::NoStaticMut]);
}

#[test]
fn plain_static_passes() {
    let src = "static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);\n";
    assert_eq!(violations(src, LIB), vec![]);
}

// ---- seeded workspace end-to-end --------------------------------------

/// A throwaway workspace under the target dir; removed on drop so reruns
/// start clean.
struct FixtureWs {
    root: PathBuf,
}

impl FixtureWs {
    fn new(tag: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("audit-fixture-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir fixture");
        Self { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("mkdir");
        }
        std::fs::write(path, text).expect("write fixture");
    }
}

impl Drop for FixtureWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

const CLEAN_MANIFEST: &str =
    "[package]\nname = \"demo\"\n\n[lints]\nworkspace = true\n";

#[test]
fn seeded_violation_fails_the_audit() {
    let ws = FixtureWs::new("seeded");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(!report.is_clean());
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::SafetyComment);
    assert_eq!(v.file, "crates/demo/src/lib.rs");
    assert_eq!(v.line, 2);
}

#[test]
fn clean_fixture_workspace_audits_clean() {
    let ws = FixtureWs::new("clean");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() -> u8 {\n    7\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn waiver_silences_exactly_its_violation() {
    let ws = FixtureWs::new("waived");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    ws.write(
        "audit.allow",
        "# demo waiver\nsafety-comment crates/demo/src/lib.rs -- legacy kernel, tracked in #42\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].rule, Rule::SafetyComment);
}

#[test]
fn unused_waiver_is_itself_a_violation() {
    let ws = FixtureWs::new("unused-waiver");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    let waivers =
        waiver::parse("no-unwrap crates/demo/src/lib.rs -- stale\n").expect("parses");
    let report = audit_with_waivers(&ws.root, &waivers).expect("audit runs");
    assert_eq!(report.violations.len(), 1);
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::UnusedWaiver);
    assert_eq!(v.file, "audit.allow");
    assert_eq!(v.line, 1);
}

#[test]
fn malformed_waiver_file_is_a_hard_error() {
    assert!(waiver::parse("not-a-rule some/path.rs -- why\n").is_err());
    assert!(waiver::parse("no-unwrap some/path.rs\n").is_err());
    assert!(waiver::parse("# comments\n\nno-unwrap a.rs -- reason\n").is_ok());
}

#[test]
fn missing_lint_opt_in_is_flagged() {
    let ws = FixtureWs::new("no-lints");
    ws.write("crates/demo/Cargo.toml", "[package]\nname = \"demo\"\n");
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, Rule::LintHeader);
}

#[test]
fn unsafe_free_crate_must_forbid_unsafe_code() {
    let ws = FixtureWs::new("no-forbid");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write("crates/demo/src/lib.rs", "pub fn f() {}\n");
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].rule, Rule::LintHeader);
}

// ---- rule catalog ------------------------------------------------------

#[test]
fn rule_catalog_has_at_least_five_rules_with_stable_ids() {
    assert!(Rule::ALL.len() >= 5);
    for &rule in Rule::ALL {
        assert_eq!(Rule::from_id(rule.id()), Some(rule));
        assert!(!rule.describe().is_empty());
    }
}

#[test]
fn out_of_line_cfg_test_module_is_exempt_from_unwrap_rule() {
    // `#[cfg(test)] mod tests;` puts the test body in src/tests.rs; the
    // unwrap rule must treat that file (and any subtree of the same name)
    // as test code, exactly like an inline #[cfg(test)] module.
    let ws = FixtureWs::new("oolmod");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() -> u8 {\n    7\n}\n\n#[cfg(test)]\nmod tests;\n",
    );
    ws.write(
        "crates/demo/src/tests.rs",
        "#[test]\nfn t() {\n    Some(1).unwrap();\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn undeclared_sibling_module_still_hits_the_unwrap_rule() {
    // The exemption is keyed on the declaration: a module NOT declared
    // under #[cfg(test)] keeps full library rules even if it looks testy.
    let ws = FixtureWs::new("oolmod-neg");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub mod helpers;\n\n#[cfg(test)]\nmod tests;\n",
    );
    ws.write(
        "crates/demo/src/tests.rs",
        "#[test]\nfn t() {\n    Some(1).unwrap();\n}\n",
    );
    ws.write(
        "crates/demo/src/helpers.rs",
        "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, Rule::NoUnwrap);
    assert_eq!(report.violations[0].file, "crates/demo/src/helpers.rs");
}

#[test]
fn out_of_line_test_module_as_mod_rs_is_exempt() {
    // Same exemption as `tests.rs`, but the body lives at `tests/mod.rs` —
    // the other spelling rustc accepts for `#[cfg(test)] mod tests;`.
    let ws = FixtureWs::new("oolmod-modrs");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() -> u8 {\n    7\n}\n\n#[cfg(test)]\nmod tests;\n",
    );
    ws.write(
        "crates/demo/src/tests/mod.rs",
        "#[test]\nfn t() {\n    Some(1).unwrap();\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn undeclared_mod_rs_module_still_hits_the_unwrap_rule() {
    // Negative polarity: a `helpers/mod.rs` NOT declared under
    // `#[cfg(test)]` keeps full library rules.
    let ws = FixtureWs::new("oolmod-modrs-neg");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\npub mod helpers;\n\n#[cfg(test)]\nmod tests;\n",
    );
    ws.write(
        "crates/demo/src/tests/mod.rs",
        "#[test]\nfn t() {\n    Some(1).unwrap();\n}\n",
    );
    ws.write(
        "crates/demo/src/helpers/mod.rs",
        "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, Rule::NoUnwrap);
    assert_eq!(report.violations[0].file, "crates/demo/src/helpers/mod.rs");
}

// ---- graph rules, seeded end-to-end ------------------------------------

#[test]
fn seeded_hot_path_allocation_fails_the_audit() {
    let ws = FixtureWs::new("hot-alloc");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\n// AUDIT: hotpath\npub fn run(v: &mut Vec<u32>) {\n    fill(v);\n}\nfn fill(v: &mut Vec<u32>) {\n    v.push(1);\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    let v = &report.violations[0];
    assert_eq!(v.rule, Rule::HotpathNoAlloc);
    assert_eq!(v.line, 7);
    assert!(v.msg.contains("run"), "witness path names the root: {}", v.msg);
}

#[test]
fn cold_annotation_clears_the_seeded_allocation() {
    let ws = FixtureWs::new("hot-alloc-cold");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\n// AUDIT: hotpath\npub fn run(v: &mut Vec<u32>) {\n    fill(v);\n}\n// AUDIT: cold — setup only, runs once.\nfn fill(v: &mut Vec<u32>) {\n    v.push(1);\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn seeded_hot_path_indexing_fails_the_audit() {
    let ws = FixtureWs::new("hot-panic");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\n// AUDIT: hotpath\npub fn run(v: &[u32], i: usize) -> u32 {\n    v[i]\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, Rule::HotpathNoPanic);
    assert_eq!(report.violations[0].line, 4);
}

#[test]
fn index_justification_clears_the_seeded_indexing() {
    let ws = FixtureWs::new("hot-panic-ok");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\n// AUDIT: hotpath\npub fn run(v: &[u32], i: usize) -> u32 {\n    // INDEX: caller guarantees i < v.len().\n    v[i]\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn seeded_unjustified_ordering_fails_the_audit() {
    let ws = FixtureWs::new("ordering");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\nuse std::sync::atomic::{AtomicU64, Ordering};\npub static C: AtomicU64 = AtomicU64::new(0);\npub fn bump() {\n    C.fetch_add(1, Ordering::Relaxed);\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, Rule::OrderingJustify);
    assert_eq!(report.violations[0].line, 5);
}

#[test]
fn ordering_comment_clears_the_seeded_ordering() {
    let ws = FixtureWs::new("ordering-ok");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\nuse std::sync::atomic::{AtomicU64, Ordering};\npub static C: AtomicU64 = AtomicU64::new(0);\npub fn bump() {\n    C.fetch_add(1, Ordering::Relaxed); // ORDERING: monotonic counter.\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn seeded_lock_inversion_fails_the_audit() {
    let ws = FixtureWs::new("lock-inv");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\nuse std::sync::Mutex;\npub struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    pub fn fwd(&self) {\n        let _x = self.a.lock();\n        let _y = self.b.lock();\n    }\n    pub fn rev(&self) {\n        let _y = self.b.lock();\n        let _x = self.a.lock();\n    }\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, Rule::LockOrder);
}

#[test]
fn consistent_lock_order_audits_clean() {
    let ws = FixtureWs::new("lock-ok");
    ws.write("crates/demo/Cargo.toml", CLEAN_MANIFEST);
    ws.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\nuse std::sync::Mutex;\npub struct S { a: Mutex<u32>, b: Mutex<u32> }\nimpl S {\n    pub fn fwd(&self) {\n        let _x = self.a.lock();\n        let _y = self.b.lock();\n    }\n    pub fn also_fwd(&self) {\n        let _x = self.a.lock();\n        let _y = self.b.lock();\n    }\n}\n",
    );
    let report = audit_workspace(&ws.root).expect("audit runs");
    assert!(report.is_clean(), "{:?}", report.violations);
}

// ---- self-audit --------------------------------------------------------

/// The gate's anchor: the live workspace must audit clean (violations are
/// fixed or carry an `audit.allow` entry with a reason). If this fails,
/// either fix the finding or waive it explicitly — never loosen a rule.
#[test]
fn live_workspace_audits_clean() {
    let root = workspace_root();
    // Sanity: we found the real workspace, not a stray directory.
    assert!(root.join("crates/audit").is_dir(), "bad root {root:?}");
    let report = audit_workspace(&root).expect("audit runs");
    assert!(report.files_scanned > 100, "suspiciously few files scanned");
    assert!(
        report.is_clean(),
        "live workspace has violations:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// ISSUE 10 acceptance: the hot-path reachability analysis must actually
/// cover the paper's execute paths and the serve worker loops. If a root
/// annotation is dropped or resolution regresses so the kernels fall out
/// of the hot cone, this fails — the allocation/panic rules would be
/// vacuously green otherwise.
#[test]
fn live_hot_reachability_covers_the_execute_and_serve_paths() {
    let root = workspace_root();
    let report = audit_workspace(&root).expect("audit runs");
    for name in [
        "ConvPlan::execute",
        "DepthwisePlan::execute",
        "FusedDwPwPlan::execute",
        "batcher_loop",
        "shard_loop",
    ] {
        assert!(
            report.hot_roots.iter().any(|r| r == name),
            "hot root {name:?} missing; roots = {:?}",
            report.hot_roots
        );
    }
    // Micro-kernels and the shard execute body are reached *through* the
    // roots, not annotated themselves — reachability must pull them in.
    for name in ["compute_strip", "run_tile", "dyn_kernel", "execute_batch"] {
        assert!(
            report.hot_reachable.iter().any(|r| r == name),
            "{name:?} not hot-reachable; cone = {:?}",
            report.hot_reachable
        );
        assert!(
            !report.hot_roots.iter().any(|r| r == name),
            "{name:?} should be reached, not a root"
        );
    }
}

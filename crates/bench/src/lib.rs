//! Shared measurement infrastructure for the figure harness and the
//! `cargo bench` targets (which run on the in-tree [`harness`] — the
//! offline container cannot pull in Criterion).
//!
//! Everything here is about running one convolution workload under one
//! *method* (the paper's term for a convolution implementation) and
//! reporting GFLOPS, with per-method setup (layout conversion, weight
//! packing, tuning) handled the way the paper's methodology (§7.4)
//! prescribes for that method:
//!
//! * `im2col+GEMM`, `nDirect` — no setup excluded; every cost inside the
//!   call is measured (nDirect's filter transform happens on the fly);
//! * `LIBXSMM-like` — layout conversion excluded (the paper measures its
//!   micro-kernels on pre-converted data, Fig. 1b/4) but reported
//!   separately by the breakdown experiment;
//! * `XNNPACK-like` — weights pre-packed at operator-creation time (as in
//!   XNNPACK), the indirection buffer built per call;
//! * `ACL-direct-like` — the naive-parallelization strawman of §3.2:
//!   correct direct convolution parallelized only over `K`;
//! * `Ansor-like` — nDirect's kernel space tuned per shape by the
//!   evolutionary searcher, tuning time excluded (§7.3 excludes Ansor's
//!   search overhead).

// This crate has no business touching raw pointers; the auditor's
// lint-header rule holds that line at compile time.
#![forbid(unsafe_code)]

pub mod harness;
pub mod perf;

use std::time::Instant;

use ndirect_autotune::{tune, TuneSettings};
use ndirect_baselines::{blocked, im2col, indirect};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_platform::Platform;
use ndirect_support::Json;
use ndirect_tensor::{ActLayout, ConvShape, FilterLayout, Tensor4};
use ndirect_threads::{Grid2, StaticPool};
use ndirect_workloads::make_problem;

/// The convolution implementations compared across the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Im2colGemm,
    Xnnpack,
    Libxsmm,
    NDirect,
    AclDirect,
    AnsorTuned,
}

impl Method {
    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Method::Im2colGemm => "im2col+GEMM",
            Method::Xnnpack => "XNNPACK",
            Method::Libxsmm => "LIBXSMM",
            Method::NDirect => "NDIRECT",
            Method::AclDirect => "ACL_DIRECT",
            Method::AnsorTuned => "Ansor",
        }
    }

    /// The method set of Figures 4, 8 and 9.
    pub const FIG4: [Method; 4] = [
        Method::Im2colGemm,
        Method::Xnnpack,
        Method::Libxsmm,
        Method::NDirect,
    ];
}

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub layer_id: usize,
    pub method: Method,
    pub threads: usize,
    pub batch: usize,
    pub gflops: f64,
}

/// Conversion into the workspace's [`Json`] value, for the result files
/// the `figures` binary writes.
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::num(f64::from(*self))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::usize(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::str(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

macro_rules! impl_tojson_tuple {
    ($($t:ident : $i:tt),+) => {
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$i.to_json()),+])
            }
        }
    };
}

impl_tojson_tuple!(A: 0, B: 1);
impl_tojson_tuple!(A: 0, B: 1, C: 2);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tojson_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("layer_id".into(), Json::usize(self.layer_id)),
            ("method".into(), Json::str(self.method.label())),
            ("threads".into(), Json::usize(self.threads)),
            ("batch".into(), Json::usize(self.batch)),
            ("gflops".into(), Json::num(self.gflops)),
        ])
    }
}

/// Times `f` `reps` times after one warm-up, returning the minimum.
pub fn best_seconds<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    std::hint::black_box(f());
    let mut best = f64::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let out = f();
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

/// Runs one `(shape, method)` workload and reports throughput.
pub fn run_method(
    method: Method,
    shape: &ConvShape,
    pool: &StaticPool,
    platform: &Platform,
    reps: usize,
) -> f64 {
    let p = make_problem(*shape, ActLayout::Nchw, FilterLayout::Kcrs, 0xbe9c4);
    let secs = match method {
        Method::Im2colGemm => best_seconds(reps, || {
            im2col::conv_im2col(pool, &p.input, &p.filter, shape)
        }),
        Method::Xnnpack => {
            let in_nhwc = p.input.to_layout(ActLayout::Nhwc);
            let f_krsc = p.filter.to_layout(FilterLayout::Krsc);
            // Weights packed once (operator creation); indirection buffer
            // built per call (depends on input geometry).
            let weights = indirect::PackedWeights::pack(&f_krsc);
            best_seconds(reps, || {
                let ind = indirect::build_indirection(shape);
                let mut out = Tensor4::output_for(shape, ActLayout::Nhwc);
                indirect::conv_indirect_prepacked(pool, &in_nhwc, &weights, &ind, shape, &mut out);
                out
            })
        }
        Method::Libxsmm => {
            let ops = blocked::prepare_blocked(&p.input, &p.filter, shape);
            best_seconds(reps, || blocked::conv_blocked(pool, &ops.input, &ops.filter, shape))
        }
        Method::NDirect => {
            let sched = Schedule::derive(platform, shape, pool.size());
            best_seconds(reps, || {
                conv_ndirect_with(pool, &p.input, &p.filter, shape, &sched)
            })
        }
        Method::AclDirect => {
            // §3.2's failure mode: parallelize only K, sequential batches.
            let mut sched = Schedule::derive(platform, shape, pool.size());
            sched.grid = Grid2::new(1, pool.size());
            best_seconds(reps, || {
                conv_ndirect_with(pool, &p.input, &p.filter, shape, &sched)
            })
        }
        Method::AnsorTuned => {
            let settings = tune_settings_for_budget(reps);
            let report = tune(pool, shape, &p.input, &p.filter, &settings);
            best_seconds(reps, || {
                conv_ndirect_with(pool, &p.input, &p.filter, shape, &report.best)
            })
        }
    };
    shape.gflops(secs)
}

/// Tuning budget: modest by default so the harness completes on a laptop;
/// the paper's 1,000-trial budget is available via `figures --paper-trials`.
pub fn tune_settings_for_budget(reps: usize) -> TuneSettings {
    TuneSettings {
        trials: 16,
        population: 8,
        pool: 32,
        measured_per_round: 4,
        reps: reps.min(2),
        seed: 0xa45,
    }
}

/// Formats a GFLOPS table: one row per layer, one column per method.
pub fn format_table(
    title: &str,
    methods: &[Method],
    rows: &[(usize, Vec<f64>)],
    peak_for_pct: Option<f64>,
) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "### {title}");
    let _ = write!(s, "{:>5} ", "layer");
    for m in methods {
        let _ = write!(s, "{:>14} ", m.label());
    }
    if peak_for_pct.is_some() {
        let _ = write!(s, "{:>10}", "%peak(nD)");
    }
    let _ = writeln!(s);
    let mut geo: Vec<f64> = vec![0.0; methods.len()];
    for (id, vals) in rows {
        let _ = write!(s, "{id:>5} ");
        for (i, v) in vals.iter().enumerate() {
            let _ = write!(s, "{v:>14.2} ");
            geo[i] += v.max(1e-9).ln();
        }
        if let Some(peak) = peak_for_pct {
            if let Some(last) = vals.last() {
                let _ = write!(s, "{:>9.1}%", 100.0 * last / peak);
            }
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:>5} ", "Geo");
    for g in &geo {
        let _ = write!(s, "{:>14.2} ", (g / rows.len().max(1) as f64).exp());
    }
    let _ = writeln!(s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_platform::host;

    #[test]
    fn best_seconds_returns_minimum_positive() {
        let s = best_seconds(3, || {
            std::hint::black_box((0..1000).sum::<u64>())
        });
        assert!((0.0..1.0).contains(&s));
    }

    #[test]
    fn every_method_measures_a_small_layer() {
        let shape = ConvShape::square(1, 8, 8, 10, 3, 1);
        let pool = StaticPool::new(1);
        let platform = host();
        for m in [
            Method::Im2colGemm,
            Method::Xnnpack,
            Method::Libxsmm,
            Method::NDirect,
            Method::AclDirect,
        ] {
            let g = run_method(m, &shape, &pool, &platform, 1);
            assert!(g > 0.0, "{m:?}");
        }
    }

    #[test]
    fn tuned_method_measures_too() {
        // Separate (slower) case: runs a real 6-trial search first.
        let shape = ConvShape::square(1, 4, 4, 8, 3, 1);
        let pool = StaticPool::new(1);
        let g = run_method(Method::AnsorTuned, &shape, &pool, &host(), 1);
        assert!(g > 0.0);
    }

    #[test]
    fn acl_method_uses_all_k_grid() {
        // With >1 threads the ACL strawman pins ptn = 1.
        let shape = ConvShape::square(2, 4, 8, 8, 3, 1);
        let pool = StaticPool::new(2);
        let g = run_method(Method::AclDirect, &shape, &pool, &host(), 1);
        assert!(g > 0.0);
    }

    #[test]
    fn table_formatting_includes_geomean() {
        let rows = vec![(1, vec![10.0, 20.0]), (2, vec![40.0, 80.0])];
        let t = format_table("t", &[Method::Im2colGemm, Method::NDirect], &rows, Some(100.0));
        assert!(t.contains("Geo"));
        assert!(t.contains("im2col+GEMM"));
        assert!(t.contains("20.00"), "{t}");
        // Geomean of 10 and 40 = 20.
        assert!(t.lines().last().unwrap().contains("20.00"));
    }
}

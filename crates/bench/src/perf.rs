//! The BENCH trajectory: schema-versioned performance suites and the
//! noise-aware comparator that gates regressions.
//!
//! `perfreport` (this crate's second binary) runs a pinned Table 4 layer
//! suite and serializes one [`BenchSuite`] per run into
//! `results/BENCH_<stamp>.json`. A committed `results/BENCH_baseline.json`
//! plus [`compare`] turn those files into a CI gate: every layer's
//! achieved GFLOPS is checked against the baseline with a relative
//! threshold wide enough for shared-VM noise (EXPERIMENTS.md documents
//! ±10–20% between runs), and any layer falling further than that fails
//! the build. The schema carries everything needed to *attribute* a
//! regression, not just detect it: %-of-peak and roofline bound (from
//! `ndirect_platform::Roofline`), the cache model's predicted pack bytes
//! next to the probe's measured ones, and raw hardware counts when the
//! `perf_event_open` backend could run.
//!
//! Everything round-trips through the in-tree [`Json`] value, so the
//! comparator can be tested on synthetic suites with no filesystem or
//! binary involved.

use ndirect_support::{Json, JsonError};

/// Version stamp written into (and required from) every BENCH file.
/// Bump on any breaking schema change and teach [`BenchSuite::from_json`]
/// the migration.
pub const BENCH_SCHEMA_VERSION: usize = 1;

/// The `kind` discriminator of a BENCH file, so a TRACE or figure JSON
/// handed to the comparator by mistake fails loudly instead of diffing
/// garbage.
pub const BENCH_KIND: &str = "ndirect-perf-suite";

/// Default comparator threshold, percent. EXPERIMENTS.md measures
/// ±10–20% run-to-run noise on the shared CI host; CI passes a wider
/// `--threshold 35` because its runners also vary between invocations.
pub const DEFAULT_THRESHOLD_PCT: f64 = 20.0;

/// One measured + attributed Table 4 layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRecord {
    /// Table 4 layer ID (1–28).
    pub id: usize,
    /// Input channels, output channels, spatial size, kernel size, stride
    /// — denormalized from Table 4 so the file is self-describing.
    pub c: usize,
    /// Output channels `K`.
    pub k: usize,
    /// Input height = width.
    pub hw: usize,
    /// Kernel height = width.
    pub rs: usize,
    /// Stride.
    pub stride: usize,
    /// Batch size the layer ran at.
    pub batch: usize,
    /// Best-of-`reps` wall time for one plan execution, seconds.
    pub secs: f64,
    /// Achieved throughput, GFLOPS.
    pub gflops: f64,
    /// Achieved percent of the platform's compute peak at this thread
    /// count.
    pub pct_peak: f64,
    /// Arithmetic intensity against compulsory traffic, FLOPs/byte.
    pub intensity: f64,
    /// Achieved percent of the roofline ceiling at this intensity — the
    /// honest efficiency number for memory-bound layers.
    pub pct_roofline: f64,
    /// `"compute"` or `"memory"` (`BoundKind::name`).
    pub bound: String,
    /// The cache model's packing-traffic prediction
    /// (`Schedule::predicted_pack_bytes`) for one execution.
    pub predicted_pack_bytes: u64,
    /// The probe's measured `bytes_packed` for one execution; `None` when
    /// the binary was built without `--features probe`.
    pub measured_pack_bytes: Option<u64>,
    /// `(event name, count)` hardware deltas across one execution, empty
    /// when `perf_event_open` was unavailable.
    pub hw_counts: Vec<(String, u64)>,
    /// `true` when the PMU multiplexed and the hardware counts are scaled
    /// estimates.
    pub hw_multiplexed: bool,
    /// Suite-specific `(metric, value)` pairs that don't warrant schema
    /// churn — `servebench` records `p50_ms`/`p99_ms`/`shed_pct` here.
    /// Additive: files written before this field parse as empty, and the
    /// comparator only consults it when both sides carry a metric.
    pub extra: Vec<(String, f64)>,
}

impl LayerRecord {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("id".to_owned(), Json::usize(self.id)),
            ("c".to_owned(), Json::usize(self.c)),
            ("k".to_owned(), Json::usize(self.k)),
            ("hw".to_owned(), Json::usize(self.hw)),
            ("rs".to_owned(), Json::usize(self.rs)),
            ("stride".to_owned(), Json::usize(self.stride)),
            ("batch".to_owned(), Json::usize(self.batch)),
            ("secs".to_owned(), Json::num(self.secs)),
            ("gflops".to_owned(), Json::num(self.gflops)),
            ("pct_peak".to_owned(), Json::num(self.pct_peak)),
            ("intensity".to_owned(), Json::num(self.intensity)),
            ("pct_roofline".to_owned(), Json::num(self.pct_roofline)),
            ("bound".to_owned(), Json::str(self.bound.clone())),
            (
                "predicted_pack_bytes".to_owned(),
                Json::num(self.predicted_pack_bytes as f64),
            ),
        ];
        members.push((
            "measured_pack_bytes".to_owned(),
            match self.measured_pack_bytes {
                Some(b) => Json::num(b as f64),
                None => Json::Null,
            },
        ));
        members.push((
            "hw_counters".to_owned(),
            Json::Obj(
                self.hw_counts
                    .iter()
                    .map(|(name, count)| (name.clone(), Json::num(*count as f64)))
                    .collect(),
            ),
        ));
        members.push(("hw_multiplexed".to_owned(), Json::Bool(self.hw_multiplexed)));
        if !self.extra.is_empty() {
            members.push((
                "extra".to_owned(),
                Json::Obj(
                    self.extra
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::num(*value)))
                        .collect(),
                ),
            ));
        }
        Json::Obj(members)
    }

    fn from_json(v: &Json) -> Result<LayerRecord, JsonError> {
        let f64_field = |key: &str| -> Result<f64, JsonError> {
            v.require(key)?.as_f64().ok_or_else(|| JsonError {
                msg: format!("layer key {key:?} is not a number"),
                at: 0,
            })
        };
        let measured_pack_bytes = match v.get("measured_pack_bytes") {
            Some(Json::Null) | None => None,
            Some(b) => Some(b.as_f64().ok_or_else(|| JsonError {
                msg: "measured_pack_bytes is neither null nor a number".into(),
                at: 0,
            })? as u64),
        };
        let hw_counts = v
            .get("hw_counters")
            .and_then(Json::as_obj)
            .map(|members| {
                members
                    .iter()
                    .filter_map(|(k, c)| c.as_f64().map(|x| (k.clone(), x as u64)))
                    .collect()
            })
            .unwrap_or_default();
        Ok(LayerRecord {
            id: v.usize_field("id")?,
            c: v.usize_field("c")?,
            k: v.usize_field("k")?,
            hw: v.usize_field("hw")?,
            rs: v.usize_field("rs")?,
            stride: v.usize_field("stride")?,
            batch: v.usize_field("batch")?,
            secs: f64_field("secs")?,
            gflops: f64_field("gflops")?,
            pct_peak: f64_field("pct_peak")?,
            intensity: f64_field("intensity")?,
            pct_roofline: f64_field("pct_roofline")?,
            bound: v.str_field("bound")?.to_owned(),
            predicted_pack_bytes: f64_field("predicted_pack_bytes")? as u64,
            measured_pack_bytes,
            hw_counts,
            hw_multiplexed: v
                .get("hw_multiplexed")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            extra: v
                .get("extra")
                .and_then(Json::as_obj)
                .map(|members| {
                    members
                        .iter()
                        .filter_map(|(k, x)| x.as_f64().map(|x| (k.clone(), x)))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

/// One complete `perfreport` run: environment header + per-layer records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSuite {
    /// Seconds since the Unix epoch when the suite ran.
    pub created_unix: u64,
    /// `Platform::name` of the measuring host.
    pub host: String,
    /// Thread count every layer ran at.
    pub threads: usize,
    /// Timed repetitions per layer (best is kept).
    pub reps: usize,
    /// Compute ceiling used for `pct_peak`, GFLOPS.
    pub peak_gflops: f64,
    /// Memory ceiling used for the roofline, GiB/s.
    pub bandwidth_gib_s: f64,
    /// Whether the software probe (`--features probe`) was compiled in.
    pub probe_enabled: bool,
    /// `"available"`, or the human-readable reason hardware counters were
    /// not.
    pub hw_status: String,
    /// Per-layer measurements.
    pub layers: Vec<LayerRecord>,
}

impl BenchSuite {
    /// Serializes the suite, schema stamp first.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema_version".to_owned(),
                Json::usize(BENCH_SCHEMA_VERSION),
            ),
            ("kind".to_owned(), Json::str(BENCH_KIND)),
            ("created_unix".to_owned(), Json::num(self.created_unix as f64)),
            ("host".to_owned(), Json::str(self.host.clone())),
            ("threads".to_owned(), Json::usize(self.threads)),
            ("reps".to_owned(), Json::usize(self.reps)),
            ("peak_gflops".to_owned(), Json::num(self.peak_gflops)),
            (
                "bandwidth_gib_s".to_owned(),
                Json::num(self.bandwidth_gib_s),
            ),
            ("probe_enabled".to_owned(), Json::Bool(self.probe_enabled)),
            ("hw_status".to_owned(), Json::str(self.hw_status.clone())),
            (
                "layers".to_owned(),
                Json::Arr(self.layers.iter().map(LayerRecord::to_json).collect()),
            ),
        ])
    }

    /// Deserializes and validates a suite: the schema stamp and `kind`
    /// must match exactly — a BENCH file from a future schema or a
    /// different JSON artifact is an error, not a silent partial parse.
    pub fn from_json(v: &Json) -> Result<BenchSuite, JsonError> {
        let kind = v.str_field("kind")?;
        if kind != BENCH_KIND {
            return Err(JsonError {
                msg: format!("not a BENCH file: kind {kind:?}, expected {BENCH_KIND:?}"),
                at: 0,
            });
        }
        let version = v.usize_field("schema_version")?;
        if version != BENCH_SCHEMA_VERSION {
            return Err(JsonError {
                msg: format!(
                    "BENCH schema version {version} unsupported (this build reads {BENCH_SCHEMA_VERSION})"
                ),
                at: 0,
            });
        }
        let layers = v
            .require("layers")?
            .as_arr()
            .ok_or_else(|| JsonError {
                msg: "\"layers\" is not an array".into(),
                at: 0,
            })?
            .iter()
            .map(LayerRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let f64_field = |key: &str| -> Result<f64, JsonError> {
            v.require(key)?.as_f64().ok_or_else(|| JsonError {
                msg: format!("key {key:?} is not a number"),
                at: 0,
            })
        };
        Ok(BenchSuite {
            created_unix: f64_field("created_unix")? as u64,
            host: v.str_field("host")?.to_owned(),
            threads: v.usize_field("threads")?,
            reps: v.usize_field("reps")?,
            peak_gflops: f64_field("peak_gflops")?,
            bandwidth_gib_s: f64_field("bandwidth_gib_s")?,
            probe_enabled: v
                .get("probe_enabled")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            hw_status: v.str_field("hw_status")?.to_owned(),
            layers,
        })
    }

    /// Parses a BENCH file from disk.
    pub fn load(path: &str) -> Result<BenchSuite, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        BenchSuite::from_json(&json).map_err(|e| format!("{path}: {e}"))
    }
}

/// A layer's comparator outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Faster than baseline by more than the threshold.
    Improvement,
    /// Within ±threshold of the baseline — the noise band.
    WithinNoise,
    /// Slower than baseline by more than the threshold, or missing from
    /// the candidate entirely.
    Regression,
}

impl Verdict {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Improvement => "improvement",
            Verdict::WithinNoise => "within-noise",
            Verdict::Regression => "REGRESSION",
        }
    }
}

/// One layer's baseline-vs-candidate line.
#[derive(Debug, Clone)]
pub struct LayerComparison {
    /// Table 4 layer ID.
    pub id: usize,
    /// Baseline GFLOPS.
    pub base_gflops: f64,
    /// Candidate GFLOPS; `None` when the layer vanished from the
    /// candidate suite (always a [`Verdict::Regression`]).
    pub cand_gflops: Option<f64>,
    /// `cand / base` (0 when the candidate is missing).
    pub ratio: f64,
    /// The noise-aware outcome.
    pub verdict: Verdict,
}

/// The comparator's full output.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Relative threshold, percent, that separated noise from signal.
    pub threshold_pct: f64,
    /// Per-layer outcomes, baseline order.
    pub layers: Vec<LayerComparison>,
    /// Geometric-mean candidate/baseline ratio over layers present in
    /// both suites (1.0 when none are).
    pub geomean_ratio: f64,
}

impl CompareReport {
    /// `true` when any layer regressed (the CI gate condition).
    pub fn has_regression(&self) -> bool {
        self.layers
            .iter()
            .any(|l| l.verdict == Verdict::Regression)
    }

    /// Human-readable table + summary, one line per layer.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>5} {:>14} {:>14} {:>8}  verdict (threshold ±{}%)",
            "layer", "base GF/s", "cand GF/s", "ratio", self.threshold_pct
        );
        for l in &self.layers {
            match l.cand_gflops {
                Some(c) => {
                    let _ = writeln!(
                        out,
                        "{:>5} {:>14.2} {:>14.2} {:>7.2}x  {}",
                        l.id,
                        l.base_gflops,
                        c,
                        l.ratio,
                        l.verdict.name()
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "{:>5} {:>14.2} {:>14} {:>8}  {} (missing from candidate)",
                        l.id,
                        l.base_gflops,
                        "-",
                        "-",
                        l.verdict.name()
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "geomean ratio {:.3}x over {} layer(s); {}",
            self.geomean_ratio,
            self.layers.iter().filter(|l| l.cand_gflops.is_some()).count(),
            if self.has_regression() {
                "REGRESSION detected"
            } else {
                "no regression"
            }
        );
        out
    }
}

/// Diffs `candidate` against `baseline` with a relative noise threshold
/// (percent). Layers are matched by Table 4 ID; a baseline layer missing
/// from the candidate is a regression (coverage must not silently
/// shrink), while extra candidate layers are new coverage and ignored.
pub fn compare(baseline: &BenchSuite, candidate: &BenchSuite, threshold_pct: f64) -> CompareReport {
    let thr = (threshold_pct / 100.0).max(0.0);
    let mut layers = Vec::new();
    let mut log_sum = 0.0f64;
    let mut matched = 0usize;
    for b in &baseline.layers {
        let cand = candidate.layers.iter().find(|c| c.id == b.id);
        match cand {
            Some(c) => {
                let ratio = c.gflops / b.gflops.max(1e-12);
                let verdict = if ratio < 1.0 - thr {
                    Verdict::Regression
                } else if ratio > 1.0 + thr {
                    Verdict::Improvement
                } else {
                    Verdict::WithinNoise
                };
                log_sum += ratio.max(1e-12).ln();
                matched += 1;
                layers.push(LayerComparison {
                    id: b.id,
                    base_gflops: b.gflops,
                    cand_gflops: Some(c.gflops),
                    ratio,
                    verdict,
                });
            }
            None => layers.push(LayerComparison {
                id: b.id,
                base_gflops: b.gflops,
                cand_gflops: None,
                ratio: 0.0,
                verdict: Verdict::Regression,
            }),
        }
    }
    CompareReport {
        threshold_pct,
        layers,
        geomean_ratio: if matched == 0 {
            1.0
        } else {
            (log_sum / matched as f64).exp()
        },
    }
}

/// The baseline ratchet behind `perfreport refresh`: returns a copy of
/// `baseline` where exactly the layers whose [`compare`] verdict is
/// [`Verdict::Improvement`] carry the candidate's record, plus the IDs
/// adopted (baseline order). Noise-band and regressed layers keep the
/// committed record, so the gate only ever tightens; layers missing from
/// the candidate are untouched for the same reason. The suite header
/// stays the baseline's — a partial adoption is still the baseline run's
/// environment for every layer it kept.
pub fn refresh_improvements(
    baseline: &BenchSuite,
    candidate: &BenchSuite,
    threshold_pct: f64,
) -> (BenchSuite, Vec<usize>) {
    let report = compare(baseline, candidate, threshold_pct);
    let improved: Vec<usize> = report
        .layers
        .iter()
        .filter(|l| l.verdict == Verdict::Improvement)
        .map(|l| l.id)
        .collect();
    let mut merged = baseline.clone();
    for layer in &mut merged.layers {
        if improved.contains(&layer.id) {
            if let Some(c) = candidate.layers.iter().find(|c| c.id == layer.id) {
                *layer = c.clone();
            }
        }
    }
    (merged, improved)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(id: usize, gflops: f64) -> LayerRecord {
        LayerRecord {
            id,
            c: 64,
            k: 64,
            hw: 56,
            rs: 3,
            stride: 1,
            batch: 1,
            secs: 0.01,
            gflops,
            pct_peak: 50.0,
            intensity: 20.0,
            pct_roofline: 60.0,
            bound: "compute".into(),
            predicted_pack_bytes: 1_000_000,
            measured_pack_bytes: Some(1_000_000),
            hw_counts: vec![("cycles".into(), 123), ("llc_misses".into(), 7)],
            hw_multiplexed: false,
            extra: vec![("p99_ms".into(), 1.5)],
        }
    }

    fn suite(gflops: &[(usize, f64)]) -> BenchSuite {
        BenchSuite {
            created_unix: 1_700_000_000,
            host: "test-host".into(),
            threads: 1,
            reps: 3,
            peak_gflops: 100.0,
            bandwidth_gib_s: 10.0,
            probe_enabled: true,
            hw_status: "available".into(),
            layers: gflops.iter().map(|&(id, g)| layer(id, g)).collect(),
        }
    }

    #[test]
    fn suite_round_trips_through_the_in_tree_json() {
        let s = suite(&[(3, 40.0), (10, 55.5)]);
        let text = s.to_json().pretty();
        let parsed = BenchSuite::from_json(&Json::parse(&text).expect("valid JSON"))
            .expect("valid suite");
        assert_eq!(parsed, s);
    }

    #[test]
    fn missing_probe_bytes_serialize_as_null() {
        let mut s = suite(&[(3, 40.0)]);
        s.layers[0].measured_pack_bytes = None;
        s.layers[0].hw_counts.clear();
        let text = s.to_json().pretty();
        assert!(text.contains("\"measured_pack_bytes\": null"));
        let parsed = BenchSuite::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.layers[0].measured_pack_bytes, None);
        assert!(parsed.layers[0].hw_counts.is_empty());
    }

    #[test]
    fn wrong_schema_or_kind_is_rejected() {
        let mut j = suite(&[(3, 40.0)]).to_json();
        if let Json::Obj(members) = &mut j {
            members[0].1 = Json::usize(BENCH_SCHEMA_VERSION + 1);
        }
        assert!(BenchSuite::from_json(&j).is_err(), "future schema must fail");

        let trace = Json::Obj(vec![
            ("schema_version".into(), Json::usize(BENCH_SCHEMA_VERSION)),
            ("kind".into(), Json::str("ndirect-trace")),
        ]);
        let err = BenchSuite::from_json(&trace).unwrap_err();
        assert!(err.msg.contains("not a BENCH file"), "{err}");
    }

    #[test]
    fn comparator_separates_the_three_verdicts() {
        let base = suite(&[(1, 100.0), (2, 100.0), (3, 100.0)]);
        // Layer 1 +50% (improvement), layer 2 -5% (noise), layer 3 -40%
        // (regression) at a 20% threshold.
        let cand = suite(&[(1, 150.0), (2, 95.0), (3, 60.0)]);
        let report = compare(&base, &cand, 20.0);
        let verdicts: Vec<Verdict> = report.layers.iter().map(|l| l.verdict).collect();
        assert_eq!(
            verdicts,
            vec![Verdict::Improvement, Verdict::WithinNoise, Verdict::Regression]
        );
        assert!(report.has_regression());
        let text = report.render();
        assert!(text.contains("REGRESSION"), "{text}");
    }

    #[test]
    fn within_threshold_everywhere_passes() {
        let base = suite(&[(1, 100.0), (2, 50.0)]);
        let cand = suite(&[(1, 90.0), (2, 55.0)]);
        let report = compare(&base, &cand, 20.0);
        assert!(!report.has_regression());
        assert!(report.layers.iter().all(|l| l.verdict == Verdict::WithinNoise));
        // Geomean of 0.9 and 1.1 = sqrt(0.99).
        assert!((report.geomean_ratio - (0.9f64 * 1.1).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn a_layer_missing_from_the_candidate_is_a_regression() {
        let base = suite(&[(1, 100.0), (2, 100.0)]);
        let cand = suite(&[(1, 100.0)]);
        let report = compare(&base, &cand, 20.0);
        assert!(report.has_regression());
        assert_eq!(report.layers[1].cand_gflops, None);
        assert!(report.render().contains("missing from candidate"));
        // Extra candidate layers are new coverage, not failures.
        let wider = compare(&cand, &base, 20.0);
        assert!(!wider.has_regression());
    }

    #[test]
    fn refresh_adopts_only_improvements() {
        let base = suite(&[(1, 100.0), (2, 100.0), (3, 100.0), (4, 100.0)]);
        // Layer 1 improves, 2 is noise, 3 regresses, 4 vanishes.
        let cand = suite(&[(1, 150.0), (2, 95.0), (3, 60.0)]);
        let (merged, adopted) = refresh_improvements(&base, &cand, 20.0);
        assert_eq!(adopted, vec![1]);
        let g: Vec<f64> = merged.layers.iter().map(|l| l.gflops).collect();
        assert_eq!(g, vec![150.0, 100.0, 100.0, 100.0]);
        // The header is still the baseline's.
        assert_eq!(merged.created_unix, base.created_unix);
        // And the merged suite still round-trips.
        let text = merged.to_json().pretty();
        let parsed =
            BenchSuite::from_json(&Json::parse(&text).expect("valid JSON")).expect("valid suite");
        assert_eq!(parsed, merged);
    }

    #[test]
    fn refresh_without_improvements_is_identity() {
        let base = suite(&[(1, 100.0), (2, 100.0)]);
        let cand = suite(&[(1, 101.0), (2, 60.0)]);
        let (merged, adopted) = refresh_improvements(&base, &cand, 20.0);
        assert!(adopted.is_empty());
        assert_eq!(merged, base);
    }

    #[test]
    fn exact_match_is_noise_band_and_geomean_one() {
        let base = suite(&[(1, 42.0)]);
        let report = compare(&base, &base, 10.0);
        assert!(!report.has_regression());
        assert_eq!(report.layers[0].verdict, Verdict::WithinNoise);
        assert!((report.geomean_ratio - 1.0).abs() < 1e-12);
    }
}

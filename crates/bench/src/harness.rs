//! The workspace's own micro-benchmark harness.
//!
//! The container builds fully offline, so the benches cannot pull in
//! Criterion; this module provides the small slice of its API the bench
//! files actually use — groups, per-case `Bencher::iter`, element/byte
//! throughput — implemented over [`crate::best_seconds`] (one warm-up,
//! report the minimum). Bench files register their entry points with the
//! [`bench_group!`](crate::bench_group) / [`bench_main!`](crate::bench_main)
//! macros and run under `cargo bench` exactly as before.
//!
//! Setting `NDIRECT_BENCH_JSON=<path>` additionally appends one JSON line
//! per measured case to `<path>` (creating it on first write), so a bench
//! sweep can be post-processed without scraping the human-readable table.
//! Each line is a self-contained object:
//!
//! ```json
//! {"schema_version": 1, "kind": "ndirect-bench-case", "group": "...",
//!  "case": "...", "secs": 1.2e-3, "elements": 1000, "gelem_s": 0.83}
//! ```
//!
//! (`elements`/`gelem_s` become `bytes`/`gib_s` for byte throughput, and
//! are omitted when the group declared no throughput.)

use std::io::Write;

use crate::best_seconds;
use ndirect_support::Json;

/// Schema stamp on every `NDIRECT_BENCH_JSON` line; the `kind` field is
/// `"ndirect-bench-case"` so the lines are distinguishable from BENCH
/// suites if files get mixed up.
pub const BENCH_CASE_SCHEMA_VERSION: usize = 1;

/// How a measured time is converted into a rate for the report line.
pub enum Throughput {
    /// Elements (or FLOPs) processed per iteration — reported as `Gelem/s`.
    Elements(u64),
    /// Bytes moved per iteration — reported as `GiB/s`.
    Bytes(u64),
}

/// A `function/parameter` benchmark label.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `name/param`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let function = function.into();
        Self {
            full: format!("{function}/{parameter}"),
        }
    }
}

/// Anything usable as a benchmark label: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The harness root; [`bench_group!`](crate::bench_group) passes one to
/// every registered bench function.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\n## {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named set of measurements sharing a sample size and throughput unit.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Timed repetitions per case (the reported time is the minimum).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration work used to derive a rate on report lines.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Measures one case.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_id();
        let mut b = Bencher {
            reps: self.sample_size,
            best: f64::MAX,
        };
        f(&mut b);
        self.report(&label, b.best);
        self
    }

    /// Measures one case that closes over an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_id();
        let mut b = Bencher {
            reps: self.sample_size,
            best: f64::MAX,
        };
        f(&mut b, input);
        self.report(&label, b.best);
        self
    }

    /// Ends the group (report lines are printed as cases finish).
    pub fn finish(self) {}

    fn report(&self, label: &str, secs: f64) {
        let mut line = format!("{}/{label:<40} time: {}", self.name, fmt_time(secs));
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / secs / 1e9;
                line.push_str(&format!("   thrpt: {rate:.2} Gelem/s"));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / secs / (1u64 << 30) as f64;
                line.push_str(&format!("   thrpt: {rate:.2} GiB/s"));
            }
            None => {}
        }
        println!("{line}");
        if let Ok(path) = std::env::var("NDIRECT_BENCH_JSON") {
            if !path.is_empty() {
                append_json_line(&path, self.case_json(label, secs));
            }
        }
    }

    /// One measured case as a self-contained JSON object (one line of the
    /// `NDIRECT_BENCH_JSON` sidecar).
    fn case_json(&self, label: &str, secs: f64) -> Json {
        let mut members = vec![
            (
                "schema_version".to_owned(),
                Json::usize(BENCH_CASE_SCHEMA_VERSION),
            ),
            ("kind".to_owned(), Json::str("ndirect-bench-case")),
            ("group".to_owned(), Json::str(self.name.clone())),
            ("case".to_owned(), Json::str(label)),
            ("secs".to_owned(), Json::num(secs)),
        ];
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                members.push(("elements".to_owned(), Json::num(n as f64)));
                members.push(("gelem_s".to_owned(), Json::num(n as f64 / secs / 1e9)));
            }
            Some(Throughput::Bytes(n)) => {
                members.push(("bytes".to_owned(), Json::num(n as f64)));
                members.push((
                    "gib_s".to_owned(),
                    Json::num(n as f64 / secs / (1u64 << 30) as f64),
                ));
            }
            None => {}
        }
        Json::Obj(members)
    }
}

/// Appends `value` as one compact line to `path`, creating parent
/// directories and the file as needed. Failures are reported to stderr
/// but never abort a bench run — the sidecar is an optional convenience.
fn append_json_line(path: &str, value: Json) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{}", value.compact()));
    if let Err(e) = result {
        eprintln!("NDIRECT_BENCH_JSON: cannot append to {path}: {e}");
    }
}

/// Runs and times the closure handed to a bench case.
pub struct Bencher {
    reps: usize,
    best: f64,
}

impl Bencher {
    /// Times `f` (`sample_size` repetitions after one warm-up) and records
    /// the minimum.
    pub fn iter<T>(&mut self, f: impl FnMut() -> T) {
        self.best = self.best.min(best_seconds(self.reps, f));
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:8.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:8.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:8.2} ms", secs * 1e3)
    } else {
        format!("{secs:8.3} s ")
    }
}

/// Registers bench functions under one entry point, mirroring the macro
/// shape the bench files were originally written against.
#[macro_export]
macro_rules! bench_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! bench_main {
    ($name:ident) => {
        fn main() {
            $name();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_minimum() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("harness_selftest");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        let mut ran = 0u32;
        g.bench_function("sum", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..1000u64).sum::<u64>())
            })
        });
        g.bench_with_input(BenchmarkId::new("sum", 7), &7u64, |b, &n| {
            b.iter(|| std::hint::black_box((0..n).sum::<u64>()))
        });
        g.finish();
        // One warm-up + three samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn json_sidecar_appends_one_wellformed_line_per_case() {
        let path = std::env::temp_dir().join(format!(
            "ndirect_bench_json_sidecar_{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("NDIRECT_BENCH_JSON", &path);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("sidecar_selftest");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(1 << 20));
        g.bench_function("copy", |b| b.iter(|| std::hint::black_box(vec![0u8; 64])));
        g.bench_function("fill", |b| b.iter(|| std::hint::black_box([1u8; 64])));
        g.finish();
        std::env::remove_var("NDIRECT_BENCH_JSON");

        let text = std::fs::read_to_string(&path).expect("sidecar written");
        let _ = std::fs::remove_file(&path);
        // Other tests in this process may interleave lines while the env
        // var is set; key on this test's unique group name.
        let mine: Vec<Json> = text
            .lines()
            .map(|l| Json::parse(l).expect("every line parses standalone"))
            .filter(|j| j.get("group").and_then(Json::as_str) == Some("sidecar_selftest"))
            .collect();
        assert_eq!(mine.len(), 2);
        for line in &mine {
            assert_eq!(
                line.get("kind").and_then(Json::as_str),
                Some("ndirect-bench-case")
            );
            assert_eq!(
                line.usize_field("schema_version").unwrap(),
                BENCH_CASE_SCHEMA_VERSION
            );
            assert!(line.require("secs").unwrap().as_f64().unwrap() > 0.0);
            assert!(line.require("gib_s").unwrap().as_f64().unwrap() > 0.0);
            assert_eq!(
                line.require("bytes").unwrap().as_f64().unwrap(),
                (1u64 << 20) as f64
            );
        }
        let cases: Vec<&str> = mine
            .iter()
            .map(|l| l.get("case").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(cases, ["copy", "fill"]);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(2.5e-9).contains("ns"));
        assert!(fmt_time(2.5e-5).contains("µs"));
        assert!(fmt_time(2.5e-2).contains("ms"));
        assert!(fmt_time(2.5).contains("s"));
    }
}

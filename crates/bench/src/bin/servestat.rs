//! `servestat` — render a serve metrics snapshot as an ASCII dashboard,
//! or re-export it for machines.
//!
//! ```text
//! cargo run -p ndirect-bench --bin servestat -- <METRICS_serve_*.json> [mode]
//!
//!   (no mode)   ASCII dashboard: per-stage latency quantiles, outcome
//!               counters, gauges, and a per-model breakdown
//!   --json      re-emit the snapshot as canonical snapshot JSON
//!   --prom      emit Prometheus text exposition format
//!   --check     validate the snapshot: every family in
//!               ndirect_serve::METRIC_CATALOG present with an aggregate
//!               sample, JSON round-trip lossless, Prometheus exposition
//!               parseable and non-empty; exits non-zero on any failure
//! ```
//!
//! The input is the artifact `servebench` writes next to its BENCH suite
//! (or any `MetricsSnapshot::to_json` dump, e.g. from
//! `Server::metrics_snapshot`). The CI telemetry step runs `--check`
//! against a fresh servebench run so the export surface can't silently
//! drift from the catalog.

use ndirect_probe::metrics::{parse_prometheus, HistogramSnapshot, MetricKind, MetricsSnapshot};
use ndirect_serve::METRIC_CATALOG;
use ndirect_support::Json;

/// Stage histogram families in pipeline order, with display names.
const STAGES: [(&str, &str); 7] = [
    ("serve_stage_admission_ns", "admission"),
    ("serve_stage_linger_ns", "linger"),
    ("serve_stage_dispatch_ns", "dispatch"),
    ("serve_stage_execute_ns", "execute"),
    ("serve_stage_delivery_ns", "delivery"),
    ("serve_latency_ns", "e2e latency"),
    ("serve_service_ns", "service"),
];

fn usage_exit() -> ! {
    eprintln!("usage: servestat <METRICS_serve_*.json> [--json | --prom | --check]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, mode) = match args.as_slice() {
        [p] => (p.clone(), None),
        [p, m] if m.starts_with("--") => (p.clone(), Some(m.clone())),
        [m, p] if m.starts_with("--") => (p.clone(), Some(m.clone())),
        _ => usage_exit(),
    };

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("servestat: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let json = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("servestat: {path} is not valid JSON: {e:?}");
        std::process::exit(1);
    });
    let snap = MetricsSnapshot::from_json(&json).unwrap_or_else(|e| {
        eprintln!("servestat: {path} is not a metrics snapshot: {e}");
        std::process::exit(1);
    });

    let rendered = match mode.as_deref() {
        None => dashboard(&path, &snap),
        Some("--json") => format!("{}\n", snap.to_json().pretty()),
        Some("--prom") => snap.to_prometheus(),
        Some("--check") => match check(&snap) {
            Ok(summary) => format!("servestat --check: ok ({summary})\n"),
            Err(msg) => {
                eprintln!("servestat --check: FAIL: {msg}");
                std::process::exit(1);
            }
        },
        Some(other) => {
            eprintln!("servestat: unknown mode {other:?}");
            usage_exit();
        }
    };
    // One write, EPIPE-tolerant: `servestat --prom | head` closing the
    // pipe early is a normal way to consume this output, not an error.
    use std::io::Write;
    if std::io::stdout().write_all(rendered.as_bytes()).is_err() {
        std::process::exit(0);
    }
}

/// Validates the snapshot against the serve metric catalog and both
/// export round-trips. Returns a one-line summary on success.
fn check(snap: &MetricsSnapshot) -> Result<String, String> {
    for name in METRIC_CATALOG {
        let family = snap
            .family(name)
            .ok_or_else(|| format!("catalog family {name} missing from snapshot"))?;
        if family.sample(&[]).is_none() {
            return Err(format!(
                "family {name} lacks its aggregate (unlabeled) sample"
            ));
        }
    }
    let round = MetricsSnapshot::from_json(&snap.to_json())
        .map_err(|e| format!("JSON round-trip failed to parse: {e}"))?;
    if round != *snap {
        return Err("JSON round-trip is lossy".into());
    }
    let samples = parse_prometheus(&snap.to_prometheus())
        .map_err(|e| format!("Prometheus exposition does not parse: {e}"))?;
    if samples.is_empty() {
        return Err("Prometheus exposition is empty".into());
    }
    Ok(format!(
        "{} catalog families, {} total, {} prometheus samples",
        METRIC_CATALOG.len(),
        snap.families.len(),
        samples.len()
    ))
}

fn quantile_ms(h: &HistogramSnapshot, q: f64) -> f64 {
    h.quantile(q) as f64 / 1e6
}

fn dashboard(path: &str, snap: &MetricsSnapshot) -> String {
    use std::fmt::Write;
    let mut o = String::new();
    let _ = writeln!(
        o,
        "servestat: {path} (captured {:.3}s after probe epoch)",
        snap.captured_ns as f64 / 1e9
    );

    let _ = writeln!(o);
    let _ = writeln!(o, "stage latencies (aggregate)");
    let _ = writeln!(
        o,
        "  {:<12} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50 ms", "p99 ms", "p999 ms", "max ms"
    );
    for (name, label) in STAGES {
        let h = snap.histogram(name, &[]).cloned().unwrap_or_default();
        let _ = writeln!(
            o,
            "  {:<12} {:>9} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            label,
            h.count,
            quantile_ms(&h, 50.0),
            quantile_ms(&h, 99.0),
            quantile_ms(&h, 99.9),
            quantile_ms(&h, 100.0),
        );
    }
    if let Some(h) = snap.histogram("serve_batch_size", &[]) {
        let mean = if h.count > 0 {
            h.sum as f64 / h.count as f64
        } else {
            0.0
        };
        let _ = writeln!(
            o,
            "  {:<12} {:>9} {:>10} {:>10.2} (mean; p99 {})",
            "batch size",
            h.count,
            "",
            mean,
            h.quantile(99.0)
        );
    }

    let _ = writeln!(o);
    let _ = writeln!(o, "counters (aggregate)                     gauges");
    let counters: Vec<(&str, u64)> = snap
        .families
        .iter()
        .filter(|f| f.kind == MetricKind::Counter)
        .filter_map(|f| Some((f.name.as_str(), snap.counter(&f.name, &[])?)))
        .collect();
    let gauges: Vec<(&str, f64)> = snap
        .families
        .iter()
        .filter(|f| f.kind == MetricKind::Gauge)
        .filter_map(|f| Some((f.name.as_str(), snap.gauge(&f.name, &[])?)))
        .collect();
    for i in 0..counters.len().max(gauges.len()) {
        let left = counters
            .get(i)
            .map(|(n, v)| format!("{n:<28} {v:>9}"))
            .unwrap_or_default();
        let right = gauges
            .get(i)
            .map(|(n, v)| format!("{n:<22} {v:>9.2}"))
            .unwrap_or_default();
        let _ = writeln!(o, "  {left:<39} {right}");
    }

    let models = model_names(snap);
    if !models.is_empty() {
        let _ = writeln!(o);
        let _ = writeln!(o, "per model");
        let _ = writeln!(
            o,
            "  {:<16} {:>9} {:>9} {:>9} {:>12}",
            "model", "completed", "failed", "shed", "e2e p99 ms"
        );
        for m in &models {
            let labels: &[(&str, &str)] = &[("model", m.as_str())];
            let p99 = snap
                .histogram("serve_latency_ns", labels)
                .map(|h| quantile_ms(h, 99.0))
                .unwrap_or(0.0);
            let _ = writeln!(
                o,
                "  {:<16} {:>9} {:>9} {:>9} {:>12.3}",
                m,
                snap.counter("serve_completed_total", labels).unwrap_or(0),
                snap.counter("serve_failed_total", labels).unwrap_or(0),
                snap.counter("serve_shed_total", labels).unwrap_or(0),
                p99,
            );
        }
    }
    o
}

/// Distinct `model` label values, registration order.
fn model_names(snap: &MetricsSnapshot) -> Vec<String> {
    let mut names = Vec::new();
    if let Some(f) = snap.family("serve_completed_total") {
        for s in &f.samples {
            for (k, v) in &s.labels {
                if k == "model" && !names.iter().any(|n| n == v) {
                    names.push(v.clone());
                }
            }
        }
    }
    names
}

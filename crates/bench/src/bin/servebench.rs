//! `servebench` — throughput/latency benchmark for the `ndirect-serve`
//! batching front-end.
//!
//! ```text
//! cargo run --release -p ndirect-bench --bin servebench -- [options]
//!     Drives closed-loop clients against a single-shard server for each
//!     layer of the small-layer zoo (Table 4 rows 21-23 with channels
//!     scaled by 1/8 so a request is kernel-dominated, not memcpy-bound)
//!     and writes one BENCH-schema suite to results/.
//!
//!   --secs S         measured seconds per configuration (default 2)
//!   --clients N      closed-loop client threads (default 8)
//!   --threads N      pool threads inside the single shard (default 1)
//!   --max-batch N    batcher coalescing limit when batching (default 8)
//!   --out DIR        output directory (default results/)
//!   --tag NAME       write BENCH_serve_<NAME>.json instead of a stamp
//!                    (use --tag baseline to refresh the committed gate)
//! ```
//!
//! Every layer is measured twice: **batching on** (record id = Table 4
//! row id) and **batching off** (`max_batch 1`, record id = row id +
//! 100), so the batching win is explicit in one file. The BENCH fields
//! are repurposed per the schema's `extra` escape hatch: `gflops` carries
//! requests/second (what `perfreport compare` gates), `secs` carries the
//! p50 latency in seconds, and `extra` records `p50_ms`, `p99_ms`,
//! `p999_ms`, `shed_pct`, and `mean_batch`.
//!
//! Latency percentiles come from the server's own telemetry plane
//! (`serve_latency_ns` log-bucketed histogram, DESIGN.md §16) rather
//! than a client-side sort — the same numbers `servestat` renders live.
//! Alongside the BENCH suite, the run writes `METRICS_serve_<tag>.json`:
//! the full metrics snapshot of the last configuration, the artifact the
//! CI telemetry step validates with `servestat --check`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ndirect_bench::perf::{BenchSuite, LayerRecord};
use ndirect_platform::host;
use ndirect_probe::metrics::MetricsSnapshot;
use ndirect_serve::{ModelDef, ServeConfig, Server};
use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_workloads::table4;

/// The zoo: the small-spatial ResNet-50 tail (Table 4 rows 21-23), with
/// channels scaled down 8x. At full width a single request on these rows
/// costs ~10 ms of kernel time on one core — no serving layer reaches
/// 1k req/s under that — so the zoo keeps the rows' shapes and kernel mix
/// but at 1/8 channel width, which lands requests in the regime a
/// batching front-end is actually built for.
const ZOO: [usize; 3] = [21, 22, 23];
const CHANNEL_SCALE: usize = 8;

struct Opts {
    secs: f64,
    clients: usize,
    threads: usize,
    max_batch: usize,
    out: String,
    tag: Option<String>,
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg} (see the module docs at the top of servebench.rs)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        secs: 2.0,
        clients: 8,
        threads: 1,
        max_batch: 8,
        out: "results".into(),
        tag: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage_exit(&format!("{flag} requires a positive integer")))
        };
        match a.as_str() {
            "--secs" => {
                opts.secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s| *s > 0.0)
                    .unwrap_or_else(|| usage_exit("--secs requires a positive number"))
            }
            "--clients" => opts.clients = num("--clients").max(1),
            "--threads" => opts.threads = num("--threads").max(1),
            "--max-batch" => opts.max_batch = num("--max-batch").max(1),
            "--out" => {
                opts.out = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--out requires a directory"))
                    .clone()
            }
            "--tag" => {
                opts.tag = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--tag requires a name"))
                        .clone(),
                )
            }
            other => usage_exit(&format!("unknown argument {other:?}")),
        }
    }

    let platform = host();
    println!(
        "servebench: {} | {} client(s), 1 shard x {} thread(s), {:.1}s per config",
        platform.name, opts.clients, opts.threads, opts.secs
    );
    println!(
        "{:>5} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "layer", "batching", "req/s", "p50 ms", "p99 ms", "p999 ms", "batch", "shed%"
    );

    let mut layers = Vec::new();
    let mut last_snapshot = None;
    for &id in &ZOO {
        for (batching, id_offset) in [(true, 0usize), (false, 100usize)] {
            let (record, snapshot) = run_config(&opts, id, batching, id_offset);
            println!(
                "{:>5} {:>9} {:>10.0} {:>9.3} {:>9.3} {:>9.3} {:>9.2} {:>7.2}",
                record.id,
                if batching { "on" } else { "off" },
                record.gflops,
                extra(&record, "p50_ms"),
                extra(&record, "p99_ms"),
                extra(&record, "p999_ms"),
                extra(&record, "mean_batch"),
                extra(&record, "shed_pct"),
            );
            layers.push(record);
            last_snapshot = Some(snapshot);
        }
    }

    let suite = BenchSuite {
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        host: platform.name.clone(),
        threads: opts.threads,
        reps: 1,
        peak_gflops: 0.0,
        bandwidth_gib_s: 0.0,
        probe_enabled: ndirect_probe::ENABLED,
        hw_status: "n/a (serving benchmark)".into(),
        layers,
    };

    if std::fs::create_dir_all(&opts.out).is_err() {
        eprintln!("cannot create output directory {}", opts.out);
        std::process::exit(1);
    }
    let stamp = opts
        .tag
        .clone()
        .unwrap_or_else(|| suite.created_unix.to_string());
    let path = format!("{}/BENCH_serve_{stamp}.json", opts.out);
    if let Err(e) = std::fs::write(&path, suite.to_json().pretty()) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("-> {path}");

    // The export-surface artifact: the last configuration's full metrics
    // snapshot, consumable by `servestat` (dashboard / --json / --prom /
    // --check).
    if let Some(snapshot) = last_snapshot {
        let mpath = format!("{}/METRICS_serve_{stamp}.json", opts.out);
        if let Err(e) = std::fs::write(&mpath, snapshot.to_json().pretty()) {
            eprintln!("cannot write {mpath}: {e}");
            std::process::exit(1);
        }
        println!("-> {mpath}");
    }
}

fn extra(record: &LayerRecord, name: &str) -> f64 {
    record
        .extra
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0.0)
}

fn zoo_shape(id: usize) -> ConvShape {
    let cfg = table4::layer_by_id(id).expect("zoo ids are Table 4 rows");
    ConvShape::square(
        1,
        (cfg.c / CHANNEL_SCALE).max(1),
        (cfg.k / CHANNEL_SCALE).max(1),
        cfg.hw,
        cfg.rs,
        cfg.stride,
    )
}

fn run_config(
    opts: &Opts,
    id: usize,
    batching: bool,
    id_offset: usize,
) -> (LayerRecord, MetricsSnapshot) {
    let shape = zoo_shape(id);
    let model = ModelDef {
        name: format!("t4-{id}"),
        shape,
        filter: fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), id as u64),
    };
    let config = ServeConfig {
        shards: 1,
        threads_per_shard: opts.threads,
        max_batch: if batching { opts.max_batch } else { 1 },
        batch_linger: if batching {
            Duration::from_micros(200)
        } else {
            Duration::ZERO
        },
        ..ServeConfig::default()
    };
    let server = Arc::new(Server::try_new(config, vec![model]).unwrap_or_else(|e| {
        eprintln!("layer {id}: server build failed ({e})");
        std::process::exit(1);
    }));

    // Closed-loop clients: each submits, waits, repeats. The in-flight
    // population (== client count) is what gives the batcher something to
    // coalesce.
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs_f64(opts.secs);
    let clients: Vec<_> = (0..opts.clients)
        .map(|c| {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            let name = format!("t4-{id}");
            let input =
                fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 1000 + c as u64);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match server.submit(&name, input.clone(), None) {
                        Ok(ticket) => {
                            let _ = ticket.wait();
                        }
                        Err(_) => std::thread::sleep(Duration::from_micros(50)),
                    }
                }
            })
        })
        .collect();

    let started = Instant::now();
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    // Percentiles come straight from the telemetry plane's log-bucketed
    // histogram (<= 1/32 relative error) — the duplicate sort-based
    // estimator this bin used to carry is gone.
    let snapshot = server.metrics_snapshot();
    let stats = server.stats();
    match Arc::try_unwrap(server) {
        Ok(server) => server.shutdown(),
        Err(_) => unreachable!("all clients joined"),
    }

    let latency = snapshot
        .histogram("serve_latency_ns", &[])
        .cloned()
        .unwrap_or_default();
    let ms = |q: f64| latency.quantile(q) as f64 / 1e6;
    let (p50, p99, p999) = (ms(50.0), ms(99.0), ms(99.9));
    let req_s = latency.count as f64 / elapsed;
    let mean_batch = if stats.batches > 0 {
        stats.batched_requests as f64 / stats.batches as f64
    } else {
        0.0
    };
    let shed_pct = {
        let attempts = stats.enqueued + stats.shed;
        if attempts > 0 {
            stats.shed as f64 / attempts as f64 * 100.0
        } else {
            0.0
        }
    };

    let cfg = table4::layer_by_id(id).expect("zoo id");
    let record = LayerRecord {
        id: id + id_offset,
        c: shape.c,
        k: shape.k,
        hw: cfg.hw,
        rs: cfg.rs,
        stride: cfg.stride,
        batch: if batching { opts.max_batch } else { 1 },
        secs: p50 / 1e3,
        // The comparator gates on this field; for a serving suite the
        // guarded throughput is requests/second, not GFLOPS.
        gflops: req_s,
        pct_peak: 0.0,
        intensity: 0.0,
        pct_roofline: 0.0,
        bound: "serve".into(),
        predicted_pack_bytes: 0,
        measured_pack_bytes: None,
        hw_counts: Vec::new(),
        hw_multiplexed: false,
        extra: vec![
            ("p50_ms".into(), p50),
            ("p99_ms".into(), p99),
            ("p999_ms".into(), p999),
            ("shed_pct".into(), shed_pct),
            ("mean_batch".into(), mean_batch),
        ],
    };
    (record, snapshot)
}

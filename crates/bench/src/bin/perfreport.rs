//! `perfreport` — the performance observatory's command-line front end.
//!
//! ```text
//! cargo run --release -p ndirect-bench --bin perfreport -- [options]
//!     Runs the pinned Table 4 layer suite and writes a schema-versioned
//!     results/BENCH_<stamp>.json (one ndirect_bench::perf::BenchSuite).
//!
//!   --threads N      thread count (default: hardware threads)
//!   --batch N        batch size (default 1)
//!   --reps N         timed repetitions per layer, best kept (default 5)
//!   --suite NAME     `table4` (default) or `mobilenet`: the MobileNetV1
//!                    depthwise-separable pairs, each run fused
//!                    (FusedDwPwPlan) *and* unfused (DepthwisePlan +
//!                    1×1 ConvPlan); the record keeps the fused timing
//!                    with the unfused throughput and the speedup in
//!                    `extra`
//!   --layers A,B,..  Table 4 layer IDs (default 3,5,10,16,21,28), or
//!                    MobileNet block IDs 1-13 under --suite mobilenet
//!   --out DIR        output directory (default results/)
//!   --tag NAME       write BENCH_<NAME>.json instead of a unix stamp
//!                    (use --tag baseline to refresh the committed gate)
//!
//! cargo run ... --bin perfreport -- compare <baseline> <candidate> \
//!     [--threshold PCT]
//!     Diffs two BENCH files layer by layer; exits 1 when any layer is
//!     slower than baseline by more than the threshold (default 20%, the
//!     EXPERIMENTS.md noise ceiling; CI uses a wider 35% for shared
//!     runners), 0 otherwise, 2 on usage or parse errors.
//!
//! cargo run ... --bin perfreport -- refresh <baseline> <candidate> \
//!     [--threshold PCT]
//!     Rewrites <baseline> in place, adopting the candidate's record for
//!     exactly the layers whose compare verdict is Improvement — the
//!     conservative baseline-ratchet: noise never moves the gate, and a
//!     regression can never loosen it. Exits 2 on usage or parse errors.
//! ```
//!
//! Each suite layer is measured under every applicable packing variant —
//! the model-derived schedule (`fused`), the zero-copy `none` path, and
//! the cache-resident `sliced` slab — and the measured-fastest plan is
//! kept. The chosen variant rides in `LayerRecord.extra` as
//! `packing_mode` (0 = fused, 1 = sequential, 2 = none, 3 = sliced) and
//! `packing_rows` (the slice length, 0 unless sliced).
//!
//! Built with `--features probe`, each layer's record also carries the
//! probe's measured pack bytes next to the cache model's prediction, and
//! the whole run writes a `results/TRACE_perfreport.json` span sidecar.
//! Hardware counters (cycles, instructions, cache loads/misses via
//! `perf_event_open`) ride along whenever the kernel allows them; on
//! restricted or non-Linux hosts the suite degrades to wall-clock +
//! software counters and records why in `hw_status`.

use ndirect_bench::perf::{
    compare, refresh_improvements, BenchSuite, LayerRecord, DEFAULT_THRESHOLD_PCT,
};
use ndirect_core::{ConvPlan, DepthwisePlan, FilterState, FusedDwPwPlan, PackingMode, Schedule};
use ndirect_platform::{host, Platform, Roofline};
use ndirect_probe::hwc::{HwCounters, HwEvent};
use ndirect_probe::{Counter, TraceReport};
use ndirect_tensor::{fill, ActLayout, Filter, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, mobilenet, table4};

/// The pinned suite: a spread of Table 4 regimes — early wide-spatial 3×3
/// (3), pointwise (5), mid-network 3×3 (10, 16), the tiny-spatial tail
/// (21), and a heavy VGG 3×3 (28). Six layers keep a full run under a
/// few seconds at `--reps 5` on one core.
const DEFAULT_LAYERS: [usize; 6] = [3, 5, 10, 16, 21, 28];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("compare") {
        std::process::exit(run_compare(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("refresh") {
        std::process::exit(run_refresh(&args[1..]));
    }
    std::process::exit(run_suite(&args));
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("error: {msg} (see the module docs at the top of perfreport.rs)");
    std::process::exit(2);
}

// ------------------------------------------------------------------- run

#[derive(Clone, Copy, PartialEq, Eq)]
enum Suite {
    Table4,
    Mobilenet,
}

struct RunOpts {
    threads: usize,
    batch: usize,
    reps: usize,
    suite: Suite,
    layers: Option<Vec<usize>>,
    out: String,
    tag: Option<String>,
}

fn run_suite(args: &[String]) -> i32 {
    let mut opts = RunOpts {
        threads: ndirect_threads::hardware_threads(),
        batch: 1,
        reps: 5,
        suite: Suite::Table4,
        layers: None,
        out: "results".into(),
        tag: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> usize {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage_exit(&format!("{flag} requires a positive integer")))
        };
        match a.as_str() {
            "run" => {}
            "--threads" => opts.threads = num("--threads").max(1),
            "--batch" => opts.batch = num("--batch").max(1),
            "--reps" => opts.reps = num("--reps").max(1),
            "--suite" => {
                opts.suite = match it.next().map(String::as_str) {
                    Some("table4") => Suite::Table4,
                    Some("mobilenet") => Suite::Mobilenet,
                    other => usage_exit(&format!(
                        "--suite must be `table4` or `mobilenet`, not {other:?}"
                    )),
                }
            }
            "--layers" => {
                let list = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--layers requires a comma-separated ID list"));
                opts.layers = Some(
                    list.split(',')
                        .map(|s| {
                            s.trim().parse().ok().unwrap_or_else(|| {
                                usage_exit(&format!("{s:?} is not a layer ID"))
                            })
                        })
                        .collect(),
                );
            }
            "--out" => {
                opts.out = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--out requires a directory"))
                    .clone()
            }
            "--tag" => {
                opts.tag = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--tag requires a name"))
                        .clone(),
                )
            }
            other => usage_exit(&format!("unknown argument {other:?}")),
        }
    }
    let layers = opts.layers.clone().unwrap_or_else(|| match opts.suite {
        Suite::Table4 => DEFAULT_LAYERS.to_vec(),
        Suite::Mobilenet => mobilenet::mobilenet_pairs().iter().map(|p| p.id).collect(),
    });
    if layers.is_empty() {
        usage_exit("--layers must name at least one layer");
    }
    for &id in &layers {
        let known = match opts.suite {
            Suite::Table4 => table4::layer_by_id(id).is_some(),
            Suite::Mobilenet => mobilenet::pair_by_id(id).is_some(),
        };
        if !known {
            usage_exit(&format!("{id} is not a layer ID of the selected suite"));
        }
    }
    let opts = RunOpts {
        layers: Some(layers),
        ..opts
    };

    let platform = host();
    let roofline = Roofline::for_threads(&platform, opts.threads);
    // Open hardware counters before the pool exists: the perf fds carry
    // the inherit bit, so worker threads spawned afterwards are counted.
    let hw = HwCounters::try_open(HwEvent::ALL);
    let hw_status = match &hw {
        Ok(h) => {
            let names: Vec<&str> = h.available().iter().map(|e| e.name()).collect();
            format!("available ({})", names.join(","))
        }
        Err(e) => e.to_string(),
    };
    let pool = StaticPool::new(opts.threads);

    println!(
        "perfreport: {} | {} thread(s), batch {}, reps {} | peak {:.1} GF/s, bw {:.1} GiB/s (ridge {:.1} FLOP/B)",
        platform.name,
        opts.threads,
        opts.batch,
        opts.reps,
        roofline.peak_gflops,
        roofline.bandwidth_gib_s,
        roofline.ridge_intensity(),
    );
    println!("probe: {} | hw counters: {hw_status}", ndirect_probe::ENABLED);

    let layers = match opts.suite {
        Suite::Table4 => table4_records(&opts, &platform, &roofline, hw.as_ref().ok(), &pool),
        Suite::Mobilenet => mobilenet_records(&opts, &platform, &roofline, &pool),
    };

    if layers.is_empty() {
        eprintln!("no layer produced a record; refusing to write an empty BENCH file");
        return 1;
    }

    let suite = BenchSuite {
        created_unix: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        host: platform.name.clone(),
        threads: opts.threads,
        reps: opts.reps,
        peak_gflops: roofline.peak_gflops,
        bandwidth_gib_s: roofline.bandwidth_gib_s,
        probe_enabled: ndirect_probe::ENABLED,
        hw_status,
        layers,
    };

    if std::fs::create_dir_all(&opts.out).is_err() {
        eprintln!("cannot create output directory {}", opts.out);
        return 1;
    }
    let stamp = opts
        .tag
        .clone()
        .unwrap_or_else(|| suite.created_unix.to_string());
    let path = format!("{}/BENCH_{stamp}.json", opts.out);
    if let Err(e) = std::fs::write(&path, suite.to_json().pretty()) {
        eprintln!("cannot write {path}: {e}");
        return 1;
    }
    println!("-> {path}");

    if ndirect_probe::ENABLED {
        let trace_path = format!("{}/TRACE_perfreport.json", opts.out);
        let report = TraceReport::capture();
        match std::fs::write(&trace_path, report.to_chrome_trace().pretty()) {
            Ok(()) => println!("-> {trace_path} (chrome://tracing)"),
            Err(e) => eprintln!("cannot write {trace_path}: {e}"),
        }
    }
    ndirect_probe::report_if_env("perfreport");
    0
}

/// The pinned Table 4 suite: each layer measured under every applicable
/// packing variant, fastest plan kept.
fn table4_records(
    opts: &RunOpts,
    platform: &Platform,
    roofline: &Roofline,
    hw: Option<&HwCounters>,
    pool: &StaticPool,
) -> Vec<LayerRecord> {
    println!(
        "{:>5} {:>11} {:>8} {:>9} {:>8} {:>7}  {:>12} {:>12} {:>11} {:>10}",
        "layer", "GF/s", "%peak", "I(F/B)", "%roof", "bound", "pred pack B", "meas pack B", "LLC miss", "packing"
    );
    let mut layers = Vec::new();
    for &id in opts.layers.as_deref().unwrap_or_default() {
        let cfg = table4::layer_by_id(id).expect("validated above");
        let shape = cfg.shape(opts.batch);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, id as u64);
        let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);

        // Packing-variant selection: the model-derived schedule competes
        // against its own zero-copy and cache-resident-sliced versions;
        // each is timed best-of-reps and the measured winner is kept.
        // Every variant computes the same Algorithm 2 loop nest (outputs
        // are bitwise identical), so this trades nothing but time.
        let base_sched = Schedule::derive(platform, &shape, opts.threads)
            .with_filter_state(FilterState::PreTransformed);
        let model_rows =
            ndirect_core::model::slicing::slab_rows(platform, &shape, base_sched.tc);
        let mut best: Option<(ConvPlan, f64)> = None;
        for mode in [
            base_sched.packing,
            PackingMode::None,
            PackingMode::Sliced { rows: model_rows },
        ] {
            let mut sched = base_sched.clone();
            sched.packing = mode;
            let plan = match ConvPlan::try_with_schedule(&shape, &p.filter, &sched) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("layer {id}: {mode:?} plan build failed ({e}); skipping variant");
                    continue;
                }
            };
            // Wall time: best of `reps` after best_seconds' built-in
            // warm-up.
            let secs = ndirect_bench::best_seconds(opts.reps, || {
                plan.execute(pool, &p.input, &mut out).expect("planned layer")
            });
            if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                best = Some((plan, secs));
            }
        }
        let Some((plan, secs)) = best else {
            eprintln!("layer {id}: no packing variant produced a plan; skipping");
            continue;
        };

        // Software accounting for exactly one execution, via snapshot
        // deltas (no global reset, so nothing else is disturbed).
        let before = TraceReport::capture();
        plan.execute(pool, &p.input, &mut out).expect("planned layer");
        let delta = TraceReport::capture().since(&before);
        let measured_pack_bytes =
            ndirect_probe::ENABLED.then(|| delta.counter(Counter::BytesPacked));

        // Hardware deltas for one more execution.
        let (hw_counts, hw_multiplexed) = match hw {
            Some(h) => {
                let (_, sample) = h.sample(|| {
                    plan.execute(pool, &p.input, &mut out).expect("planned layer")
                });
                (
                    sample
                        .counts
                        .iter()
                        .map(|&(e, n)| (e.name().to_owned(), n))
                        .collect(),
                    sample.multiplexed,
                )
            }
            None => (Vec::new(), false),
        };

        let flops = shape.flops();
        let traffic = ndirect_platform::conv_min_traffic_bytes(&shape);
        let perf = roofline.attribute(flops, traffic, secs);
        let predicted_pack_bytes = plan.schedule().predicted_pack_bytes_u64(&shape);
        let chosen = plan.schedule().packing;
        let (mode_code, mode_rows) = match chosen {
            PackingMode::Fused => (0.0, 0.0),
            PackingMode::Sequential => (1.0, 0.0),
            PackingMode::None => (2.0, 0.0),
            PackingMode::Sliced { rows } => (3.0, rows as f64),
        };

        let record = LayerRecord {
            id,
            c: cfg.c,
            k: cfg.k,
            hw: cfg.hw,
            rs: cfg.rs,
            stride: cfg.stride,
            batch: opts.batch,
            secs,
            gflops: perf.gflops,
            pct_peak: perf.pct_peak,
            intensity: perf.intensity,
            pct_roofline: perf.pct_roofline,
            bound: perf.bound.name().to_owned(),
            predicted_pack_bytes,
            measured_pack_bytes,
            hw_counts,
            hw_multiplexed,
            extra: vec![
                ("packing_mode".to_owned(), mode_code),
                ("packing_rows".to_owned(), mode_rows),
            ],
        };
        println!(
            "{:>5} {:>11.2} {:>7.1}% {:>9.1} {:>7.1}% {:>7}  {:>12} {:>12} {:>11} {:>10}",
            id,
            record.gflops,
            record.pct_peak,
            record.intensity,
            record.pct_roofline,
            record.bound,
            record.predicted_pack_bytes,
            record
                .measured_pack_bytes
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
            record
                .hw_counts
                .iter()
                .find(|(n, _)| n == "llc_misses")
                .map(|(_, c)| c.to_string())
                .unwrap_or_else(|| "-".into()),
            chosen.encode(),
        );
        layers.push(record);
    }
    layers
}

/// The MobileNet depthwise-separable suite: each pair runs fused
/// ([`FusedDwPwPlan`]) and unfused ([`DepthwisePlan`] into a materialized
/// intermediate, then a 1×1 [`ConvPlan`]); the record keeps the fused
/// timing, with the unfused throughput, the fused/unfused speedup, and
/// the intermediate-bytes accounting in `extra`.
fn mobilenet_records(
    opts: &RunOpts,
    platform: &Platform,
    roofline: &Roofline,
    pool: &StaticPool,
) -> Vec<LayerRecord> {
    println!(
        "{:>5} {:>11} {:>11} {:>8} {:>7}  {:>13} {:>13}",
        "block", "fused GF/s", "unfus GF/s", "speedup", "bound", "pred saved B", "meas saved B"
    );
    let mut layers = Vec::new();
    for &id in opts.layers.as_deref().unwrap_or_default() {
        let cfg = mobilenet::pair_by_id(id).expect("validated above");
        let dw_shape = cfg.dw_shape(opts.batch);
        let pw_shape = cfg.pw_shape(opts.batch);
        let input =
            fill::random_tensor(Tensor4::input_for(&dw_shape, ActLayout::Nchw), id as u64);
        let dwf = fill::random_filter(
            Filter::zeros(cfg.c, 1, 3, 3, FilterLayout::Kcrs),
            id as u64 ^ 1,
        );
        let pwf = fill::random_filter(
            Filter::zeros(cfg.k, cfg.c, 1, 1, FilterLayout::Kcrs),
            id as u64 ^ 2,
        );

        // Fused: one pass, the intermediate lives in the slab. The output
        // zero-fill rides inside the timed closure — the fused plan
        // accumulates, so seeding it is part of the path's real cost.
        let fused = match FusedDwPwPlan::try_new(platform, &dw_shape, &dwf, &pwf, opts.threads) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("block {id}: fused plan build failed ({e}); skipping");
                continue;
            }
        };
        let mut out = Tensor4::zeros(
            dw_shape.n,
            cfg.k,
            dw_shape.p(),
            dw_shape.q(),
            ActLayout::Nchw,
        );
        let fused_secs = ndirect_bench::best_seconds(opts.reps, || {
            out.as_mut_slice().fill(0.0);
            fused.execute(pool, &input, &mut out).expect("planned pair")
        });

        // Unfused: depthwise into a materialized tensor, then the standard
        // nDirect 1×1 — the round-trip the fusion deletes.
        let (dw_plan, pw_plan) = match (
            DepthwisePlan::try_new(&dw_shape, &dwf, opts.threads),
            ConvPlan::try_new(platform, &pw_shape, &pwf, opts.threads),
        ) {
            (Ok(d), Ok(p)) => (d, p),
            (d, p) => {
                let e = d.err().or(p.err()).expect("one side failed");
                eprintln!("block {id}: unfused plan build failed ({e}); skipping");
                continue;
            }
        };
        let mut mid = Tensor4::output_for(&dw_shape, ActLayout::Nchw);
        let mut unfused_out = Tensor4::output_for(&pw_shape, ActLayout::Nchw);
        let unfused_secs = ndirect_bench::best_seconds(opts.reps, || {
            dw_plan.execute(pool, &input, &mut mid).expect("planned pair");
            pw_plan
                .execute(pool, &mid, &mut unfused_out)
                .expect("planned pair");
        });

        // Probe accounting for exactly one fused execution.
        let before = TraceReport::capture();
        out.as_mut_slice().fill(0.0);
        fused.execute(pool, &input, &mut out).expect("planned pair");
        let delta = TraceReport::capture().since(&before);
        let measured_saved =
            ndirect_probe::ENABLED.then(|| delta.counter(Counter::BytesIntermediateSaved));

        let flops = cfg.pair_flops(opts.batch);
        // The fused pair's compulsory traffic: both stages' minimum minus
        // the intermediate round-trip that never reaches memory.
        let traffic = (ndirect_platform::conv_min_traffic_bytes(&dw_shape)
            + ndirect_platform::conv_min_traffic_bytes(&pw_shape))
        .saturating_sub(cfg.intermediate_bytes(opts.batch));
        let perf = roofline.attribute(flops, traffic, fused_secs);
        let unfused_gflops = flops as f64 / unfused_secs / 1e9;
        let speedup = unfused_secs / fused_secs;
        let predicted_saved = fused.predicted_intermediate_saved_bytes();

        let record = LayerRecord {
            id,
            c: cfg.c,
            k: cfg.k,
            hw: cfg.hw,
            rs: 3,
            stride: cfg.stride,
            batch: opts.batch,
            secs: fused_secs,
            gflops: perf.gflops,
            pct_peak: perf.pct_peak,
            intensity: perf.intensity,
            pct_roofline: perf.pct_roofline,
            bound: perf.bound.name().to_owned(),
            predicted_pack_bytes: 0,
            measured_pack_bytes: None,
            hw_counts: Vec::new(),
            hw_multiplexed: false,
            extra: vec![
                ("unfused_gflops".to_owned(), unfused_gflops),
                ("fused_speedup".to_owned(), speedup),
                ("intermediate_saved_bytes".to_owned(), predicted_saved as f64),
                (
                    "slice_rows".to_owned(),
                    fused.schedule().slice_rows as f64,
                ),
            ],
        };
        println!(
            "{:>5} {:>11.2} {:>11.2} {:>7.2}x {:>7}  {:>13} {:>13}",
            id,
            record.gflops,
            unfused_gflops,
            speedup,
            record.bound,
            predicted_saved,
            measured_saved
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        layers.push(record);
    }
    layers
}

// --------------------------------------------------------------- compare

fn run_compare(args: &[String]) -> i32 {
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage_exit("--threshold requires a percentage"));
            }
            other => paths.push(other.to_string()),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        usage_exit("compare takes exactly two BENCH files: <baseline> <candidate>");
    };
    let baseline = match BenchSuite::load(base_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let candidate = match BenchSuite::load(cand_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    println!(
        "baseline:  {} ({} on {}, {} thread(s))",
        base_path, baseline.created_unix, baseline.host, baseline.threads
    );
    println!(
        "candidate: {} ({} on {}, {} thread(s))",
        cand_path, candidate.created_unix, candidate.host, candidate.threads
    );
    if baseline.threads != candidate.threads {
        println!(
            "note: thread counts differ ({} vs {}) — ratios compare different configurations",
            baseline.threads, candidate.threads
        );
    }
    let report = compare(&baseline, &candidate, threshold);
    print!("{}", report.render());
    i32::from(report.has_regression())
}

// --------------------------------------------------------------- refresh

fn run_refresh(args: &[String]) -> i32 {
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage_exit("--threshold requires a percentage"));
            }
            other => paths.push(other.to_string()),
        }
    }
    let [base_path, cand_path] = paths.as_slice() else {
        usage_exit("refresh takes exactly two BENCH files: <baseline> <candidate>");
    };
    let baseline = match BenchSuite::load(base_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let candidate = match BenchSuite::load(cand_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let (merged, adopted) = refresh_improvements(&baseline, &candidate, threshold);
    for id in &adopted {
        println!("layer {id}: Improvement adopted into baseline");
    }
    if adopted.is_empty() {
        println!("no layer improved beyond ±{threshold}%; baseline unchanged");
        return 0;
    }
    if let Err(e) = std::fs::write(base_path, merged.to_json().pretty()) {
        eprintln!("cannot write {base_path}: {e}");
        return 2;
    }
    println!("-> {base_path} ({} layer(s) refreshed)", adopted.len());
    0
}

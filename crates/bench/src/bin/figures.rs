//! `figures` — regenerates every table and figure of the paper's
//! evaluation on the host machine.
//!
//! ```text
//! cargo run -p ndirect-bench --release --bin figures -- [options] <targets...>
//!
//! targets: table3 table4 model alpha fig1a fig1b fig4 fig5 fig6 fig7
//!          fig8 fig9 all
//! options:
//!   --threads N   thread count (default: hardware threads)
//!   --batch N     batch size (default: max(threads, 2); paper: = cores)
//!   --reps N      timed repetitions per point (default 3)
//!   --fast        1 rep, batch 1 — a quick smoke pass
//!   --out DIR     write JSON results (default: results/)
//! ```
//!
//! Absolute numbers are host-specific; EXPERIMENTS.md compares the *shape*
//! of each result against the paper.

use std::collections::HashMap;
use std::io::Write as _;

use ndirect_autotune::tune;
use ndirect_baselines::{blocked, im2col, Im2colBackend};
use ndirect_bench::{format_table, run_method, tune_settings_for_budget, Measurement, Method, ToJson};
use ndirect_core::{conv_ndirect_with, PackingMode, Schedule};
use ndirect_models::{resnet101, resnet50, vgg16, vgg19, Engine, NDirectBackend, TunedBackend};
use ndirect_platform::{host, kp920, measure_alpha, phytium_2000p, rpi4, thunderx2, Platform};
use ndirect_tensor::{ActLayout, ConvShape, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;
use ndirect_workloads::{fig1_layers, fig4_layers, make_problem, vgg16_layers, LayerConfig};

struct Opts {
    threads: usize,
    batch: usize,
    reps: usize,
    out: String,
    paper_trials: bool,
    /// Optional tuned-schedule cache file: fig6/fig7 reuse schedules from
    /// it and write newly tuned ones back (tune once, reuse forever).
    schedule_cache: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        threads: ndirect_threads::hardware_threads(),
        batch: 0,
        reps: 3,
        out: "results".into(),
        paper_trials: false,
        schedule_cache: None,
    };
    let mut targets = Vec::new();
    let mut it = args.iter();
    fn usage_exit(flag: &str, want: &str) -> ! {
        eprintln!("error: {flag} requires {want} (see `figures --help` header in the source docs)");
        std::process::exit(2);
    }
    fn num(it: &mut std::slice::Iter<'_, String>, flag: &str) -> usize {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage_exit(flag, "a positive integer"))
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threads" => opts.threads = num(&mut it, "--threads"),
            "--batch" => opts.batch = num(&mut it, "--batch"),
            "--reps" => opts.reps = num(&mut it, "--reps"),
            "--out" => {
                opts.out = it
                    .next()
                    .unwrap_or_else(|| usage_exit("--out", "a directory path"))
                    .clone()
            }
            "--fast" => {
                opts.reps = 1;
                opts.batch = 1;
            }
            "--paper-trials" => opts.paper_trials = true,
            "--schedule-cache" => {
                opts.schedule_cache = Some(
                    it.next()
                        .unwrap_or_else(|| usage_exit("--schedule-cache", "a file path"))
                        .clone(),
                )
            }
            t => targets.push(t.to_string()),
        }
    }
    if opts.batch == 0 {
        // The paper sets N = number of physical cores (§7.2).
        opts.batch = opts.threads.max(2);
    }
    if targets.is_empty() || targets.iter().any(|t| t == "all") {
        targets = ["table3", "table4", "model", "alpha", "fig1a", "fig1b", "fig4", "fig5",
            "fig6", "fig7", "fig8", "fig9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    std::fs::create_dir_all(&opts.out).ok();

    let platform = host();
    println!(
        "host: {} | SIMD backend: {} | threads={} batch={} reps={}",
        platform.name,
        ndirect_simd::backend_name(),
        opts.threads,
        opts.batch,
        opts.reps
    );
    println!("(paper setting: N = physical cores, 64/64/32/4 per machine)\n");

    for t in &targets {
        // Snapshot the probe before each target so the per-target trace
        // sidecar holds only this target's spans and counter deltas.
        let probe_before = ndirect_probe::TraceReport::capture();
        let known = match t.as_str() {
            "table3" => {
                table3();
                true
            }
            "table4" => {
                table4();
                true
            }
            "model" => {
                model_tables();
                true
            }
            "alpha" => {
                alpha_bench();
                true
            }
            "fig1a" => {
                fig1a(&opts);
                true
            }
            "fig1b" => {
                fig1b(&opts, &platform);
                true
            }
            "fig4" => {
                fig4(&opts, &platform);
                true
            }
            "fig5" => {
                fig5(&opts, &platform);
                true
            }
            "fig6" => {
                fig6(&opts, &platform);
                true
            }
            "fig7" => {
                fig7(&opts);
                true
            }
            "fig8" => {
                fig8(&opts, &platform);
                true
            }
            "fig9" => {
                fig9(&opts, &platform);
                true
            }
            "nhwc" => {
                nhwc_extension(&opts, &platform);
                true
            }
            "fastalg" => {
                fast_algorithms(&opts, &platform);
                true
            }
            "int16" => {
                int16_extension(&opts, &platform);
                true
            }
            other => {
                eprintln!("unknown target: {other}");
                false
            }
        };
        if known {
            save_target_trace(&opts, t, &probe_before);
        }
    }
}

/// With `--features probe`, writes `{out}/TRACE_{target}.json` — the
/// Chrome-trace view of what this one target did (spans and counters
/// since `before`) — and honors `NDIRECT_PROBE=1` stderr reporting for
/// every target. A no-op in probe-less builds.
fn save_target_trace(opts: &Opts, target: &str, before: &ndirect_probe::TraceReport) {
    if !ndirect_probe::ENABLED {
        return;
    }
    let delta = ndirect_probe::TraceReport::capture().since(before);
    let path = format!("{}/TRACE_{target}.json", opts.out);
    match std::fs::write(&path, delta.to_chrome_trace().pretty()) {
        Ok(()) => println!("  -> {path} (chrome://tracing)"),
        Err(e) => eprintln!("  !! cannot write {path}: {e}"),
    }
    if ndirect_probe::env_requested() {
        eprintln!("== {target} ==\n{}", delta.render_timeline(100));
    }
}

fn save_json<T: ToJson>(opts: &Opts, name: &str, value: &T) {
    let path = format!("{}/{}.json", opts.out, name);
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let s = value.to_json().pretty();
            let _ = f.write_all(s.as_bytes());
            println!("  -> {path}");
        }
        Err(e) => eprintln!("  !! cannot write {path}: {e}"),
    }
}

// ---------------------------------------------------------------- tables

fn table3() {
    println!("### Table 3: hardware platforms (paper values)");
    println!(
        "{:<15} {:>6} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "platform", "cores", "peak GF/s", "GHz", "BW GiB/s", "L1", "L2", "L3"
    );
    for p in [phytium_2000p(), kp920(), thunderx2(), rpi4(), host()] {
        println!(
            "{:<15} {:>6} {:>10.1} {:>10.2} {:>10.2} {:>7}K {:>7}K {:>8}",
            p.name,
            p.cores,
            p.peak_fp32_gflops,
            p.frequency_ghz,
            p.max_bandwidth_gib_s,
            p.cache.l1d / 1024,
            p.cache.l2 / 1024,
            p.cache
                .l3
                .map(|b| format!("{}M", b >> 20))
                .unwrap_or_else(|| "None".into()),
        );
    }
    println!();
}

fn table4() {
    println!("### Table 4: convolution operator configurations");
    println!(
        "{:>3} {:>6} {:>6} {:>5} {:>4} {:>4}  network",
        "ID", "C", "K", "H/W", "R/S", "str"
    );
    for l in fig4_layers() {
        println!(
            "{:>3} {:>6} {:>6} {:>5} {:>4} {:>4}  {:?}",
            l.id, l.c, l.k, l.hw, l.rs, l.stride, l.network
        );
    }
    println!();
}

fn model_tables() {
    println!("### Analytic models (Eqs. 1-6)");
    println!("-- register tiles (Eqs. 3-4), per platform and kernel width:");
    for p in [phytium_2000p(), kp920(), thunderx2(), rpi4(), host()] {
        print!("{:<24}", p.name);
        for s in [1usize, 3, 5, 7] {
            let (vw, vk) = ndirect_core::model::register_tile::optimal_tile(&p.simd, s);
            print!("  S={s}:(Vw={vw:>2},Vk={vk:>2})");
        }
        println!();
    }
    println!("-- cache tiles (Eqs. 1-2) for layer 10 (C128 K128 28x28 3x3):");
    let shape = ConvShape::square(64, 128, 128, 28, 3, 1);
    for p in [phytium_2000p(), kp920(), thunderx2(), rpi4(), host()] {
        let (vw, vk) = ndirect_core::model::register_tile::optimal_tile(&p.simd, 3);
        let t = ndirect_core::model::cache_tiles::derive(&p, &shape, vw, vk);
        println!(
            "{:<24} Tc={:>4} Tk={:>4} Th={:>4}",
            p.name, t.tc, t.tk, t.th
        );
    }
    println!("-- thread grids (Eqs. 5-6) on Phytium 2000+ (64 threads, alpha=2):");
    let p = phytium_2000p();
    for l in fig1_layers() {
        let shape = l.shape(p.cores);
        let g = ndirect_core::model::thread_map::derive(&p, &shape, 64);
        let ideal = ndirect_core::model::thread_map::ideal_ptn(&p, &shape);
        println!(
            "layer {:>2}: PTn x PTk = {:>2} x {:>2}   (ideal PTn = {:>5.1})",
            l.id,
            g.ptn(),
            g.ptk(),
            ideal
        );
    }
    println!();
}

fn alpha_bench() {
    println!("### alpha microbenchmark (Sec. 6.2)");
    let h = host();
    let llc = h.cache.l3.unwrap_or(h.cache.l2);
    let m = measure_alpha(4 * llc, 3);
    println!(
        "streaming {:.3} ns/elem, non-streaming {:.3} ns/elem  =>  alpha = {:.2}\n",
        m.streaming_ns, m.non_streaming_ns, m.alpha
    );
}

// ---------------------------------------------------------------- figures

/// Figure 1a: runtime breakdown of im2col+GEMM and LIBXSMM-style direct
/// convolution when fed NCHW data (single thread, so attribution is exact).
fn fig1a(opts: &Opts) {
    println!("### Fig 1a: % of runtime per step (batch=1, 1 thread)");
    println!(
        "{:>5} | {:>10} {:>10} {:>12} | {:>10} {:>12}",
        "layer", "im2col", "packing", "micro(GEMM)", "transform", "micro(XSMM)"
    );
    let pool = StaticPool::new(1);
    let mut json = Vec::new();
    for l in fig1_layers() {
        let shape = l.shape(1);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 1);
        let (_, sw_gemm) = im2col::conv_im2col_timed(&p.input, &p.filter, &shape);
        let (_, sw_xsmm) = blocked::conv_blocked_timed(&pool, &p.input, &p.filter, &shape);
        let g = |sw: &ndirect_platform::Stopwatch, k: &str| {
            100.0 * sw.get(k).as_secs_f64() / sw.total().as_secs_f64().max(1e-12)
        };
        println!(
            "{:>5} | {:>9.1}% {:>9.1}% {:>11.1}% | {:>9.1}% {:>11.1}%",
            l.id,
            g(&sw_gemm, "im2col"),
            g(&sw_gemm, "packing"),
            g(&sw_gemm, "micro-kernel"),
            g(&sw_xsmm, "transform"),
            g(&sw_xsmm, "micro-kernel"),
        );
        json.push((
            l.id,
            g(&sw_gemm, "im2col"),
            g(&sw_gemm, "packing"),
            g(&sw_gemm, "micro-kernel"),
            g(&sw_xsmm, "transform"),
            g(&sw_xsmm, "micro-kernel"),
        ));
    }
    save_json(opts, "fig1a", &json);
    println!();
}

fn measure_layers(
    layers: &[LayerConfig],
    methods: &[Method],
    opts: &Opts,
    platform: &Platform,
    threads: usize,
    batch: usize,
) -> Vec<(usize, Vec<f64>)> {
    let pool = StaticPool::new(threads);
    layers
        .iter()
        .map(|l| {
            let shape = l.shape(batch);
            let vals = methods
                .iter()
                .map(|&m| run_method(m, &shape, &pool, platform, opts.reps))
                .collect();
            (l.id, vals)
        })
        .collect()
}

fn to_measurements(
    rows: &[(usize, Vec<f64>)],
    methods: &[Method],
    threads: usize,
    batch: usize,
) -> Vec<Measurement> {
    rows.iter()
        .flat_map(|(id, vals)| {
            methods.iter().zip(vals).map(move |(&m, &g)| Measurement {
                layer_id: *id,
                method: m,
                threads,
                batch,
                gflops: g,
            })
        })
        .collect()
}

/// Figure 1b: multi-core CONV performance as % of peak, 5 methods.
fn fig1b(opts: &Opts, platform: &Platform) {
    println!(
        "### Fig 1b: layers 1-20, {} threads, batch {} (% of modeled peak)",
        opts.threads, opts.batch
    );
    let methods = [
        Method::Libxsmm,
        Method::Im2colGemm,
        Method::Xnnpack,
        Method::AclDirect,
        Method::AnsorTuned,
    ];
    let rows = measure_layers(fig1_layers(), &methods, opts, platform, opts.threads, opts.batch);
    let peak = platform.peak_for_threads(opts.threads);
    let pct_rows: Vec<(usize, Vec<f64>)> = rows
        .iter()
        .map(|(id, vals)| (*id, vals.iter().map(|g| 100.0 * g / peak).collect()))
        .collect();
    print!("{}", format_table("percent of peak", &methods, &pct_rows, None));
    save_json(opts, "fig1b", &to_measurements(&rows, &methods, opts.threads, opts.batch));
    println!();
}

/// Figure 4: GFLOPS of the 4 main methods over all 28 layers.
fn fig4(opts: &Opts, platform: &Platform) {
    println!(
        "### Fig 4: layers 1-28, {} threads, batch {} (GFLOPS; last col = nDirect % of peak)",
        opts.threads, opts.batch
    );
    let rows = measure_layers(
        fig4_layers(),
        &Method::FIG4,
        opts,
        platform,
        opts.threads,
        opts.batch,
    );
    print!(
        "{}",
        format_table(
            "GFLOPS",
            &Method::FIG4,
            &rows,
            Some(platform.peak_for_threads(opts.threads)),
        )
    );
    save_json(opts, "fig4", &to_measurements(&rows, &Method::FIG4, opts.threads, opts.batch));
    println!();
}

/// Figure 5: the packing optimization on the VGG layers.
fn fig5(opts: &Opts, platform: &Platform) {
    println!(
        "### Fig 5: fused vs sequential packing, VGG layers 24-28 ({} threads, batch {})",
        opts.threads, opts.batch
    );
    println!(
        "{:>5} {:>16} {:>16} {:>9}",
        "layer", "sequential GF/s", "fused GF/s", "speedup"
    );
    let pool = StaticPool::new(opts.threads);
    let mut json = Vec::new();
    for l in vgg16_layers() {
        let shape = l.shape(opts.batch);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 5);
        let base = Schedule::derive(platform, &shape, opts.threads);
        let mut g = [0.0f64; 2];
        for (i, mode) in [PackingMode::Sequential, PackingMode::Fused].iter().enumerate() {
            let sched = base.with_packing(*mode);
            let secs = ndirect_bench::best_seconds(opts.reps, || {
                conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)
            });
            g[i] = shape.gflops(secs);
        }
        println!(
            "{:>5} {:>16.2} {:>16.2} {:>8.2}x",
            l.id,
            g[0],
            g[1],
            g[1] / g[0]
        );
        json.push((l.id, g[0], g[1]));
    }
    save_json(opts, "fig5", &json);
    println!();
}

/// Figure 6: nDirect speedup over the Ansor-like tuner, layers 1-20.
fn fig6(opts: &Opts, platform: &Platform) {
    let trials = if opts.paper_trials { 1000 } else { 16 };
    println!(
        "### Fig 6: nDirect speedup over Ansor-like tuned schedules ({} trials/layer)",
        trials
    );
    println!("{:>5} {:>14} {:>14} {:>9}", "layer", "Ansor GF/s", "NDIRECT GF/s", "speedup");
    let pool = StaticPool::new(opts.threads);
    let mut json = Vec::new();
    for l in fig1_layers() {
        let shape = l.shape(opts.batch);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 6);
        let mut settings = tune_settings_for_budget(opts.reps);
        settings.trials = trials;
        let report = tune(&pool, &shape, &p.input, &p.filter, &settings);
        let tuned_secs = ndirect_bench::best_seconds(opts.reps, || {
            conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &report.best)
        });
        let sched = Schedule::derive(platform, &shape, opts.threads);
        let nd_secs = ndirect_bench::best_seconds(opts.reps, || {
            conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)
        });
        let (ga, gn) = (shape.gflops(tuned_secs), shape.gflops(nd_secs));
        println!("{:>5} {:>14.2} {:>14.2} {:>8.2}x", l.id, ga, gn, gn / ga);
        json.push((l.id, ga, gn));
    }
    save_json(opts, "fig6", &json);
    println!();
}

/// Figure 7: end-to-end inference, normalized to the Ansor-like backend.
fn fig7(opts: &Opts) {
    println!(
        "### Fig 7: end-to-end inference ({} threads, batch {})",
        opts.threads, opts.batch
    );
    let models = [resnet50(7), resnet101(7), vgg16(7), vgg19(7)];
    let pool = StaticPool::new(opts.threads);
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>16} {:>18} {:>10}",
        "model", "NDIRECT (s)", "ND+fused (s)", "Ansor (s)", "im2col+GEMM (s)", "NDIRECT vs Ansor", "conv %"
    );
    let mut json = Vec::new();
    for model in &models {
        let input = ndirect_tensor::fill::random_tensor(
            Tensor4::zeros(opts.batch, 3, 224, 224, ActLayout::Nchw),
            99,
        );
        // Tune each distinct conv shape once (Ansor methodology: search
        // cost excluded from inference time). A --schedule-cache file makes
        // tuning a one-time cost across harness invocations.
        let mut cache = opts
            .schedule_cache
            .as_ref()
            .and_then(|p| ndirect_autotune::ScheduleCache::load(p).ok())
            .unwrap_or_else(|| ndirect_autotune::ScheduleCache::new("figures fig7"));
        let mut table = HashMap::new();
        for shape in model.conv_shapes(opts.batch) {
            if table.contains_key(&shape) {
                continue;
            }
            if let Some(sched) = cache.get(&shape) {
                table.insert(shape, sched.clone());
                continue;
            }
            let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 7);
            let mut settings = tune_settings_for_budget(1);
            settings.trials = if opts.paper_trials { 64 } else { 8 };
            let report = tune(&pool, &shape, &p.input, &p.filter, &settings);
            cache.put(&shape, report.best.clone());
            table.insert(shape, report.best);
        }
        if let Some(path) = &opts.schedule_cache {
            if let Err(e) = cache.save(path) {
                eprintln!("  !! cannot write schedule cache {path}: {e}");
            }
        }
        let tuned = TunedBackend::new(table, "Ansor-like");
        let ndirect = NDirectBackend::host();

        let time_backend = |backend: &dyn ndirect_baselines::Convolution, fuse: bool| {
            let engine = Engine::new(backend, &pool).with_residual_fusion(fuse);
            let mut best = f64::MAX;
            let mut conv_frac = 0.0;
            for _ in 0..opts.reps.max(1) {
                let (out, stats) = engine.run(model, &input);
                std::hint::black_box(out);
                if stats.total.as_secs_f64() < best {
                    best = stats.total.as_secs_f64();
                    conv_frac = stats.conv_fraction();
                }
            }
            (best, conv_frac)
        };
        let (t_nd, frac) = time_backend(&ndirect, false);
        let (t_nd_fused, _) = time_backend(&ndirect, true);
        let (t_ansor, _) = time_backend(&tuned, false);
        let (t_gemm, _) = time_backend(&Im2colBackend, false);
        println!(
            "{:<12} {:>14.3} {:>12.3} {:>12.3} {:>16.3} {:>17.2}x {:>9.1}%",
            model.name,
            t_nd,
            t_nd_fused,
            t_ansor,
            t_gemm,
            t_ansor / t_nd,
            100.0 * frac
        );
        json.push((model.name.clone(), t_nd, t_nd_fused, t_ansor, t_gemm));
    }
    save_json(opts, "fig7", &json);
    println!();
}

/// Figure 8: the embedded-platform experiment (RPi 4 in the paper):
/// single-core and all-core runs of layers 1-20.
fn fig8(opts: &Opts, platform: &Platform) {
    println!("### Fig 8a: single-core, layers 1-20, batch 1");
    let rows = measure_layers(fig1_layers(), &Method::FIG4, opts, platform, 1, 1);
    print!("{}", format_table("GFLOPS (1 thread)", &Method::FIG4, &rows, None));
    save_json(opts, "fig8a", &to_measurements(&rows, &Method::FIG4, 1, 1));

    let threads = opts.threads.max(4);
    println!("### Fig 8b: {threads}-thread, layers 1-20, batch {threads}");
    let rows = measure_layers(fig1_layers(), &Method::FIG4, opts, platform, threads, threads);
    print!("{}", format_table("GFLOPS (multi)", &Method::FIG4, &rows, None));
    save_json(opts, "fig8b", &to_measurements(&rows, &Method::FIG4, threads, threads));
    println!();
}

/// Extension experiment (not a paper figure): the native NHWC nDirect
/// kernel against the NCHW kernel and the NHWC-native XNNPACK-style
/// baseline, layers 1-20.
fn nhwc_extension(opts: &Opts, platform: &Platform) {
    println!(
        "### NHWC extension: native layouts compared ({} threads, batch {})",
        opts.threads, opts.batch
    );
    println!(
        "{:>5} {:>16} {:>16} {:>16}",
        "layer", "NDIRECT nchw", "NDIRECT nhwc", "XNNPACK nhwc"
    );
    let pool = StaticPool::new(opts.threads);
    let mut json = Vec::new();
    for l in fig1_layers() {
        let shape = l.shape(opts.batch);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 77);
        let sched = Schedule::derive(platform, &shape, opts.threads);
        let t_nchw = ndirect_bench::best_seconds(opts.reps, || {
            conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)
        });
        let in_nhwc = p.input.to_layout(ActLayout::Nhwc);
        let f_krsc = p.filter.to_layout(FilterLayout::Krsc);
        let t_nhwc = ndirect_bench::best_seconds(opts.reps, || {
            ndirect_core::conv_ndirect_nhwc_with(&pool, &in_nhwc, &f_krsc, &shape, &sched)
        });
        let t_xnn = ndirect_bench::best_seconds(opts.reps, || {
            ndirect_baselines::indirect::conv_indirect(&pool, &in_nhwc, &f_krsc, &shape)
        });
        let g = |t: f64| shape.gflops(t);
        println!(
            "{:>5} {:>16.2} {:>16.2} {:>16.2}",
            l.id,
            g(t_nchw),
            g(t_nhwc),
            g(t_xnn)
        );
        json.push((l.id, g(t_nchw), g(t_nhwc), g(t_xnn)));
    }
    save_json(opts, "nhwc_extension", &json);
    println!();
}

/// Extension experiment: the fast-algorithm families §2.1 sets aside
/// (Winograd F(2x2,3x3), FFT), measured for throughput, numeric error and
/// workspace against nDirect on the 3x3 stride-1 layers.
fn fast_algorithms(opts: &Opts, platform: &Platform) {
    println!(
        "### Fast algorithms (Winograd / FFT) vs nDirect, 3x3 stride-1 layers ({} threads, batch {})",
        opts.threads, opts.batch
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>11} {:>11} {:>12}",
        "layer", "nDirect GF/s", "Wino GF/s", "FFT GF/s", "Wino err", "FFT err", "Wino ws(MB)"
    );
    let pool = StaticPool::new(opts.threads);
    let mut json = Vec::new();
    for l in fig4_layers()
        .iter()
        .filter(|l| l.rs == 3 && l.stride == 1 && l.hw <= 56)
    {
        let shape = l.shape(opts.batch);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 88);
        let reference = ndirect_baselines::naive::conv_ref(&p.input, &p.filter, &shape);
        let sched = Schedule::derive(platform, &shape, opts.threads);
        let t_nd = ndirect_bench::best_seconds(opts.reps, || {
            conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)
        });
        let wino = ndirect_baselines::winograd::conv_winograd(&pool, &p.input, &p.filter, &shape);
        let t_wino = ndirect_bench::best_seconds(opts.reps, || {
            ndirect_baselines::winograd::conv_winograd(&pool, &p.input, &p.filter, &shape)
        });
        // FFT is orders of magnitude slower on 3x3; one rep suffices.
        let fftr = ndirect_baselines::fft::conv_fft(&pool, &p.input, &p.filter, &shape);
        let t_fft = ndirect_bench::best_seconds(1, || {
            ndirect_baselines::fft::conv_fft(&pool, &p.input, &p.filter, &shape)
        });
        let err_w = ndirect_tensor::max_rel_diff(wino.as_slice(), reference.as_slice());
        let err_f = ndirect_tensor::max_rel_diff(fftr.as_slice(), reference.as_slice());
        let ws_mb = ndirect_baselines::winograd::winograd_workspace_floats(&shape) as f64 * 4.0
            / (1 << 20) as f64;
        let g = |t: f64| shape.gflops(t);
        println!(
            "{:>5} {:>12.2} {:>12.2} {:>12.2} {:>11.2e} {:>11.2e} {:>12.1}",
            l.id,
            g(t_nd),
            g(t_wino),
            g(t_fft),
            err_w,
            err_f,
            ws_mb
        );
        json.push((l.id, g(t_nd), g(t_wino), g(t_fft), err_w, err_f));
    }
    save_json(opts, "fast_algorithms", &json);
    println!();
}

/// Extension experiment: the INT16 quantized path (§3.3's "other data
/// types") against FP32 nDirect — throughput in effective GOPS (2 ops per
/// MAC, same accounting) plus the induced quantization error.
fn int16_extension(opts: &Opts, platform: &Platform) {
    println!(
        "### INT16 extension: quantized vs FP32 nDirect ({} threads, batch {})",
        opts.threads, opts.batch
    );
    println!(
        "{:>5} {:>14} {:>14} {:>9} {:>12}",
        "layer", "FP32 GF/s", "INT16 GOPS", "ratio", "quant err"
    );
    let pool = StaticPool::new(opts.threads);
    let mut json = Vec::new();
    for l in fig1_layers() {
        let shape = l.shape(opts.batch);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 90);
        let sched = Schedule::derive(platform, &shape, opts.threads);
        let t_f32 = ndirect_bench::best_seconds(opts.reps, || {
            conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)
        });
        // Quantize once (operator setup), time the integer kernel.
        let reduction = shape.c * shape.r * shape.s;
        let max_code = ndirect_core::quantize::safe_max_code(reduction);
        let qx = ndirect_core::QuantParams::fit(p.input.as_slice(), max_code);
        let qw = ndirect_core::QuantParams::fit(p.filter.as_slice(), max_code);
        let mut qi = ndirect_core::Int16Tensor::zeros(shape.n, shape.c, shape.h, shape.w);
        for (d, &x) in qi.data.iter_mut().zip(p.input.as_slice()) {
            *d = qx.quantize(x);
        }
        let mut qf = ndirect_core::Int16Filter::zeros(shape.k, shape.c, shape.r, shape.s);
        for (d, &x) in qf.data.iter_mut().zip(p.filter.as_slice()) {
            *d = qw.quantize(x);
        }
        let t_i16 = ndirect_bench::best_seconds(opts.reps, || {
            ndirect_core::conv_int16(&pool, &qi, &qf, &shape)
        });
        let (qout, _, _) = ndirect_core::conv_quantized(&pool, &p.input, &p.filter, &shape);
        let reference = ndirect_baselines::naive::conv_ref(&p.input, &p.filter, &shape);
        let err = ndirect_tensor::max_rel_diff(qout.as_slice(), reference.as_slice());
        let g = |t: f64| shape.gflops(t);
        println!(
            "{:>5} {:>14.2} {:>14.2} {:>8.2}x {:>12.2e}",
            l.id,
            g(t_f32),
            g(t_i16),
            g(t_i16) / g(t_f32),
            err
        );
        json.push((l.id, g(t_f32), g(t_i16), err));
    }
    save_json(opts, "int16_extension", &json);
    println!();
}

/// Figure 9: hyper-threading — 4 threads per core, batch = logical cores.
fn fig9(opts: &Opts, platform: &Platform) {
    let threads = 4 * ndirect_threads::hardware_threads();
    println!("### Fig 9: SMT oversubscription, {threads} threads, batch {threads}");
    let rows = measure_layers(fig1_layers(), &Method::FIG4, opts, platform, threads, threads);
    print!("{}", format_table("GFLOPS (SMT)", &Method::FIG4, &rows, None));
    save_json(opts, "fig9", &to_measurements(&rows, &Method::FIG4, threads, threads));
    println!();
}

//! Figure 6 as a bench: the model-derived schedule against a
//! short Ansor-like search's best schedule (search runs once in setup —
//! the paper excludes tuning time).

use ndirect_bench::harness::{BenchmarkId, Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_autotune::{tune, TuneSettings};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};

fn bench_model_vs_tuned(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_model_vs_tuned");
    group.sample_size(10);
    let pool = StaticPool::new(1);
    let platform = ndirect_platform::host();

    for id in [3usize, 10, 16] {
        let layer = table4::layer_by_id(id).unwrap();
        let shape = layer.shape(1);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, id as u64);
        group.throughput(Throughput::Elements(shape.flops()));

        let model_sched = Schedule::derive(&platform, &shape, 1);
        let report = tune(
            &pool,
            &shape,
            &p.input,
            &p.filter,
            &TuneSettings {
                trials: 12,
                population: 6,
                pool: 16,
                measured_per_round: 3,
                reps: 1,
                seed: id as u64,
            },
        );

        group.bench_with_input(BenchmarkId::new("model_schedule", id), &id, |b, _| {
            b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &model_sched));
        });
        group.bench_with_input(BenchmarkId::new("tuned_schedule", id), &id, |b, _| {
            b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &report.best));
        });
    }
    group.finish();
}

bench_group!(benches, bench_model_vs_tuned);
bench_main!(benches);

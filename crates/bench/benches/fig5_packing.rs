//! Figure 5 as a bench: fused vs sequential packing on the VGG
//! layers (24–28).

use ndirect_bench::harness::{BenchmarkId, Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_core::{conv_ndirect_with, PackingMode, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, vgg16_layers};

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_packing");
    group.sample_size(10);
    let pool = StaticPool::new(1);
    let platform = ndirect_platform::host();

    for layer in vgg16_layers() {
        // Batch 1 and reduced spatial for the 224/112 layers to keep the
        // bench fast; the figures harness runs them full-size.
        let mut shape = layer.shape(1);
        if shape.h > 56 {
            shape = shape.with_spatial(56, 56);
        }
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, layer.id as u64);
        group.throughput(Throughput::Elements(shape.flops()));
        let base = Schedule::derive(&platform, &shape, 1);
        for (name, mode) in [
            ("fused", PackingMode::Fused),
            ("sequential", PackingMode::Sequential),
        ] {
            let sched = base.with_packing(mode);
            group.bench_with_input(BenchmarkId::new(name, layer.id), &layer.id, |b, _| {
                b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
            });
        }
    }
    group.finish();
}

bench_group!(benches, bench_packing);
bench_main!(benches);

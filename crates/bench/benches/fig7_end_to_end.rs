//! Figure 7 as a bench: end-to-end forward passes with nDirect
//! vs im2col+GEMM backends. The bench uses the scaled-down `tiny_resnet`
//! plus batch-1 ResNet-50 (full 224×224); the figures harness covers all
//! four networks and the Ansor-like backend.

use ndirect_bench::harness::Criterion;
use ndirect_bench::{bench_group, bench_main};
use ndirect_baselines::Im2colBackend;
use ndirect_models::{zoo, Engine, NDirectBackend};
use ndirect_tensor::{fill, ActLayout, Tensor4};
use ndirect_threads::StaticPool;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_end_to_end");
    group.sample_size(10);
    let pool = StaticPool::with_hardware_threads();
    let ndirect = NDirectBackend::host();

    let tiny = zoo::tiny_resnet(1);
    let x_tiny = fill::random_tensor(Tensor4::zeros(4, 3, 32, 32, ActLayout::Nchw), 2);
    group.bench_function("tiny_resnet/NDIRECT", |b| {
        let engine = Engine::new(&ndirect, &pool);
        b.iter(|| engine.run(&tiny, &x_tiny));
    });
    group.bench_function("tiny_resnet/im2col", |b| {
        let engine = Engine::new(&Im2colBackend, &pool);
        b.iter(|| engine.run(&tiny, &x_tiny));
    });

    let resnet = zoo::resnet50(1);
    let x = fill::random_tensor(Tensor4::zeros(1, 3, 224, 224, ActLayout::Nchw), 3);
    group.sample_size(10);
    group.bench_function("resnet50_b1/NDIRECT", |b| {
        let engine = Engine::new(&ndirect, &pool);
        b.iter(|| engine.run(&resnet, &x));
    });
    group.bench_function("resnet50_b1/im2col", |b| {
        let engine = Engine::new(&Im2colBackend, &pool);
        b.iter(|| engine.run(&resnet, &x));
    });
    group.finish();
}

bench_group!(benches, bench_end_to_end);
bench_main!(benches);

//! Substrate benches: the Goto GEMM against the naive triple loop, plus
//! the packing routines — guards the baseline's own quality (a slow GEMM
//! would flatter nDirect unfairly in every comparison figure).

use ndirect_bench::harness::{BenchmarkId, Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_gemm::{gemm, naive, pack, BlockSizes, MR, NR};
use ndirect_tensor::fill;
use ndirect_threads::StaticPool;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &n in &[64usize, 256, 512] {
        let (m, k) = (n, n);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill::fill_random(&mut a, 1);
        fill::fill_random(&mut b, 2);
        group.throughput(Throughput::Elements(2 * (m * n * k) as u64));

        group.bench_with_input(BenchmarkId::new("goto", n), &n, |bench, _| {
            let mut cbuf = vec![0.0f32; m * n];
            bench.iter(|| {
                cbuf.fill(0.0);
                gemm(m, n, k, &a, &b, &mut cbuf);
            });
        });
        if n <= 256 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
                let mut cbuf = vec![0.0f32; m * n];
                bench.iter(|| {
                    cbuf.fill(0.0);
                    naive::matmul(m, n, k, &a, &b, &mut cbuf);
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("par_goto_4t", n), &n, |bench, _| {
            let pool = StaticPool::new(4);
            let mut cbuf = vec![0.0f32; m * n];
            bench.iter(|| {
                cbuf.fill(0.0);
                ndirect_gemm::par_gemm(&pool, m, n, k, &a, &b, &mut cbuf, BlockSizes::default());
            });
        });
    }
    group.finish();
}

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_packing");
    group.sample_size(10);
    let (mc, kc, nc) = (264usize, 256usize, 2048usize);
    let mut a = vec![0.0f32; mc * kc];
    let mut b = vec![0.0f32; kc * nc];
    fill::fill_random(&mut a, 3);
    fill::fill_random(&mut b, 4);

    group.throughput(Throughput::Bytes((mc * kc * 4) as u64));
    group.bench_function("pack_a", |bench| {
        let mut packed = vec![0.0f32; mc.div_ceil(MR) * MR * kc];
        bench.iter(|| pack::pack_a::<MR>(&a, kc, mc, kc, &mut packed));
    });
    group.throughput(Throughput::Bytes((kc * nc * 4) as u64));
    group.bench_function("pack_b", |bench| {
        let mut packed = vec![0.0f32; nc.div_ceil(NR) * NR * kc];
        bench.iter(|| pack::pack_b::<NR>(&b, nc, kc, nc, &mut packed));
    });
    group.finish();
}

bench_group!(benches, bench_gemm, bench_packing);
bench_main!(benches);

//! What planning buys: per-call drivers re-derive the schedule, allocate
//! scratch, and (for pre-transformed schedules) re-pack the filter on
//! every invocation; a [`ConvPlan`] pays all of that once and its
//! `execute` hot path is allocation-free. On a mid-network ResNet layer
//! the plan label should beat both per-call labels — that gap is the
//! amortized setup cost, which is the point of the plan layer.
//!
//! Pass `--smoke` for a 1-sample CI pass that only checks the harness
//! runs end to end.
//!
//! Built with `--features probe`, the run also writes a trace sidecar
//! (`results/TRACE_plan_reuse.json`: counters + per-thread phase totals
//! and timelines) next to the figures' JSON results, and honors
//! `NDIRECT_PROBE=1` by printing the text timeline to stderr.

use ndirect_bench::harness::{Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_core::{try_conv_ndirect_with, ConvPlan, FilterState, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};

fn bench_plan_reuse(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut group = c.benchmark_group("plan_reuse");
    group.sample_size(if smoke { 1 } else { 20 });
    let pool = StaticPool::new(1);
    let platform = ndirect_platform::host();

    // Layer 10: C128 K128 28x28 3x3 — a mid-network ResNet-50 conv.
    let layer = table4::layer_by_id(10).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 10);
    group.throughput(Throughput::Elements(shape.flops()));
    let sched = Schedule::derive(&platform, &shape, 1);

    // Per-call, filter transformed per cache block inside the loop nest.
    let otf = sched.with_filter_state(FilterState::OnTheFly);
    group.bench_function("per_call_on_the_fly", |b| {
        b.iter(|| {
            try_conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &otf)
                .expect("valid problem")
        });
    });

    // Per-call, whole filter packed up front — and thrown away — each call.
    let pre = sched.with_filter_state(FilterState::PreTransformed);
    group.bench_function("per_call_pre_transformed", |b| {
        b.iter(|| {
            try_conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &pre)
                .expect("valid problem")
        });
    });

    // Plan built once (schedule sanitized, filter packed, scratch
    // allocated), then only the allocation-free execute is timed — the
    // steady state of framework inference with a preallocated activation.
    let plan = ConvPlan::try_new(&platform, &shape, &p.filter, 1).expect("valid problem");
    let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
    group.bench_function("plan_reuse", |b| {
        b.iter(|| plan.execute(&pool, &p.input, &mut out).expect("valid problem"));
    });
    group.finish();

    if ndirect_probe::ENABLED {
        let report = ndirect_probe::TraceReport::capture();
        let path = std::path::Path::new("results").join("TRACE_plan_reuse.json");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, report.to_json().pretty()) {
            Ok(()) => eprintln!("probe trace written to {}", path.display()),
            Err(e) => eprintln!("probe trace not written ({e})"),
        }
        ndirect_probe::report_if_env("plan_reuse (ResNet-50 layer 10)");
    }
}

bench_group!(benches, bench_plan_reuse);
bench_main!(benches);

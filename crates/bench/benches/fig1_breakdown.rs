//! Figure 1a as a bench: the phases of the im2col+GEMM and
//! LIBXSMM-style paths, timed separately on a representative layer so
//! regressions in any single phase are visible.

use ndirect_bench::harness::Criterion;
use ndirect_bench::{bench_group, bench_main};
use ndirect_baselines::{blocked, im2col};
use ndirect_tensor::{ActLayout, AlignedBuf, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};

fn bench_breakdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1a_breakdown");
    group.sample_size(10);

    // Layer 10: C128 K128 28x28 3x3 — mid-sized, im2col-transform-heavy.
    let layer = table4::layer_by_id(10).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 1);
    let pool = StaticPool::new(1);

    group.bench_function("im2col_transform_only", |b| {
        let cols = shape.p() * shape.q();
        let crs = shape.c * shape.r * shape.s;
        let mut buf = AlignedBuf::zeroed(crs * cols);
        b.iter(|| im2col::im2col_image(&p.input, &shape, 0, &mut buf));
    });

    group.bench_function("im2col_full_pipeline", |b| {
        b.iter(|| im2col::conv_im2col(&pool, &p.input, &p.filter, &shape));
    });

    group.bench_function("libxsmm_transform_only", |b| {
        b.iter(|| blocked::prepare_blocked(&p.input, &p.filter, &shape));
    });

    let ops = blocked::prepare_blocked(&p.input, &p.filter, &shape);
    group.bench_function("libxsmm_kernel_only", |b| {
        b.iter(|| blocked::conv_blocked(&pool, &ops.input, &ops.filter, &shape));
    });

    group.bench_function("libxsmm_with_transform", |b| {
        b.iter(|| blocked::conv_blocked_nchw(&pool, &p.input, &p.filter, &shape));
    });

    group.finish();
}

bench_group!(benches, bench_breakdown);
bench_main!(benches);

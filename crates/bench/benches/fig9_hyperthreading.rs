//! Figure 9 as a bench: SMT-style oversubscription — the thread
//! team is 4× the hardware parallelism and the batch matches the logical
//! thread count, as in the paper's ThunderX2 4-way-SMT experiment.

use ndirect_bench::harness::{BenchmarkId, Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_baselines::{im2col, indirect};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};

fn bench_smt(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_smt");
    group.sample_size(10);
    let threads = 4 * ndirect_threads::hardware_threads();
    let batch = threads;
    let pool = StaticPool::new(threads);
    let platform = ndirect_platform::host();

    for id in [10usize, 16] {
        let layer = table4::layer_by_id(id).unwrap();
        let shape = layer.shape(batch);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, id as u64);
        group.throughput(Throughput::Elements(shape.flops()));

        let sched = Schedule::derive(&platform, &shape, threads);
        group.bench_with_input(BenchmarkId::new("NDIRECT", id), &id, |b, _| {
            b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
        });
        group.bench_with_input(BenchmarkId::new("im2col+GEMM", id), &id, |b, _| {
            b.iter(|| im2col::conv_im2col(&pool, &p.input, &p.filter, &shape));
        });
        let in_nhwc = p.input.to_layout(ActLayout::Nhwc);
        let f_krsc = p.filter.to_layout(FilterLayout::Krsc);
        group.bench_with_input(BenchmarkId::new("XNNPACK", id), &id, |b, _| {
            b.iter(|| indirect::conv_indirect(&pool, &in_nhwc, &f_krsc, &shape));
        });
    }
    group.finish();
}

bench_group!(benches, bench_smt);
bench_main!(benches);

//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * fused vs sequential packing (also Fig. 5; here on a ResNet layer);
//! * on-the-fly vs pre-transformed filters;
//! * model-derived thread grid vs the naive all-K grid (the ACL failure
//!   mode of §3.2) vs all-N;
//! * register-tile sensitivity around the model's optimum.

use ndirect_bench::harness::{BenchmarkId, Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_core::{conv_ndirect_with, FilterState, PackingMode, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout};
use ndirect_threads::{Grid2, StaticPool};
use ndirect_workloads::{make_problem, table4};

fn bench_packing_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_packing_mode");
    group.sample_size(10);
    let pool = StaticPool::new(1);
    let layer = table4::layer_by_id(10).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 1);
    let base = Schedule::derive(&ndirect_platform::host(), &shape, 1);
    group.throughput(Throughput::Elements(shape.flops()));
    for (name, mode) in [
        ("fused", PackingMode::Fused),
        ("sequential", PackingMode::Sequential),
    ] {
        let sched = base.with_packing(mode);
        group.bench_function(name, |b| {
            b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
        });
    }
    group.finish();
}

fn bench_filter_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_filter_state");
    group.sample_size(10);
    let pool = StaticPool::new(1);
    // Layer 21 has a tiny spatial extent, so the filter transform is a
    // relatively large share of the work — the worst case for on-the-fly.
    let layer = table4::layer_by_id(21).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 2);
    let base = Schedule::derive(&ndirect_platform::host(), &shape, 1);
    group.throughput(Throughput::Elements(shape.flops()));
    for (name, state) in [
        ("on_the_fly", FilterState::OnTheFly),
        ("pre_transformed", FilterState::PreTransformed),
    ] {
        let sched = base.with_filter_state(state);
        group.bench_function(name, |b| {
            b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
        });
    }
    group.finish();
}

fn bench_thread_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_thread_grid");
    group.sample_size(10);
    let threads = 4;
    let pool = StaticPool::new(threads);
    let platform = ndirect_platform::host();
    let layer = table4::layer_by_id(3).unwrap();
    let shape = layer.shape(threads);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 3);
    let base = Schedule::derive(&platform, &shape, threads);
    group.throughput(Throughput::Elements(shape.flops()));

    let model_grid = ndirect_core::model::thread_map::derive(&platform, &shape, threads);
    for (name, grid) in [
        ("model", model_grid),
        ("naive_all_k", Grid2::new(1, threads)),
        ("all_n", Grid2::new(threads, 1)),
    ] {
        let sched = base.with_grid(grid);
        group.bench_with_input(BenchmarkId::new("grid", name), &name, |b, _| {
            b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
        });
    }
    group.finish();
}

fn bench_register_tiles(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_register_tile");
    group.sample_size(10);
    let pool = StaticPool::new(1);
    let layer = table4::layer_by_id(16).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 4);
    let base = Schedule::derive(&ndirect_platform::host(), &shape, 1);
    group.throughput(Throughput::Elements(shape.flops()));
    for (vw, vk) in [(4usize, 4usize), (4, 8), (8, 4), (8, 8), (12, 8)] {
        let mut sched = base.clone();
        sched.vw = vw;
        sched.vk = vk;
        group.bench_with_input(
            BenchmarkId::new("tile", format!("vw{vw}_vk{vk}")),
            &vw,
            |b, _| {
                b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
            },
        );
    }
    group.finish();
}

fn bench_product_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_product_mode");
    group.sample_size(10);
    let pool = StaticPool::new(1);
    let layer = table4::layer_by_id(10).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 5);
    let sched = Schedule::derive(&ndirect_platform::host(), &shape, 1);
    group.throughput(Throughput::Elements(shape.flops()));
    group.bench_function("outer_product", |b| {
        b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
    });
    group.bench_function("inner_product", |b| {
        b.iter(|| ndirect_core::conv_inner_product(&pool, &p.input, &p.filter, &shape));
    });
    group.finish();
}

bench_group!(
    benches,
    bench_packing_mode,
    bench_filter_state,
    bench_thread_grid,
    bench_register_tiles,
    bench_product_mode
);
bench_main!(benches);

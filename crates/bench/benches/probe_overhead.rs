//! The zero-cost proof for the observability layer.
//!
//! Without `--features probe`, every probe macro must const-fold away:
//! the counters stay at zero even across a full convolution, and a tight
//! loop of `probe_count!` / `probe_phase!` / `probe_span!` /
//! `probe_hist!` calls costs nanoseconds in total — no clock reads, no
//! atomics, no histogram buckets touched. Run with `--guard`
//! (the CI no-probe job does) to turn those statements into hard
//! assertions; the process aborts if instrumentation leaked into the
//! disabled build.
//!
//! With `--features probe`, `--guard` instead asserts the probes are
//! *live* (a conv moves the counters), and the bench labels report what
//! enabling costs on the same ResNet layer as `try_overhead`.

use ndirect_bench::harness::{Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_core::{try_conv_ndirect_with, Schedule};
use ndirect_probe::metrics::LogHistogram;
use ndirect_probe::{probe_count, probe_hist, probe_phase, probe_span, Counter};
use ndirect_tensor::{ActLayout, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};
use std::hint::black_box;
use std::time::Instant;

/// Iterations for the macro-cost loops: enough that even ~1 ns/call of
/// residual instrumentation would be unmistakable.
const CALLS: u64 = 100_000_000;

/// Generous per-call budget for the disabled build, in nanoseconds. A
/// compiled-out probe site is an empty loop iteration (well under 1 ns
/// even on a busy CI runner); real instrumentation (a clock read plus an
/// atomic RMW) costs tens of nanoseconds and blows well past this.
const DISABLED_NS_PER_CALL: f64 = 2.0;

fn timed_loop(mut body: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..CALLS {
        body(black_box(i));
    }
    start.elapsed().as_secs_f64() * 1e9 / CALLS as f64
}

/// Gated histogram target for the `probe_hist!` cost loop; `const`
/// construction is exactly how a kernel-side distribution would live.
static HIST: LogHistogram = LogHistogram::new();

fn macro_costs() -> [(&'static str, f64); 4] {
    [
        ("probe_count", timed_loop(|i| probe_count!(FlopsIssued, i))),
        (
            "probe_phase",
            timed_loop(|_| {
                let _t = probe_phase!(Pack);
            }),
        ),
        (
            "probe_span",
            timed_loop(|i| {
                let _s = probe_span!(Worker, i);
            }),
        ),
        ("probe_hist", timed_loop(|i| probe_hist!(HIST, i))),
    ]
}

fn bench_probe_overhead(c: &mut Criterion) {
    let guard = std::env::args().any(|a| a == "--guard");
    let pool = StaticPool::new(1);
    let platform = ndirect_platform::host();

    // Layer 10: C128 K128 28x28 3x3 — a mid-network ResNet-50 conv.
    let layer = table4::layer_by_id(10).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 10);
    let sched = Schedule::derive(&platform, &shape, 1);

    // The instrumented hot path end to end: one full conv.
    let flops_before = ndirect_probe::counter(Counter::FlopsIssued);
    try_conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched).expect("valid problem");
    let flops_delta = ndirect_probe::counter(Counter::FlopsIssued) - flops_before;

    let costs = macro_costs();
    for (name, ns) in costs {
        eprintln!(
            "{name:<12} {ns:.3} ns/call (enabled={})",
            ndirect_probe::ENABLED
        );
    }

    if guard {
        if ndirect_probe::ENABLED {
            assert_eq!(
                flops_delta,
                shape.flops(),
                "live probes must account the conv's FLOPs exactly"
            );
            assert_eq!(
                HIST.count(),
                CALLS,
                "a live probe_hist! site must record every sample"
            );
            eprintln!("guard OK: probes are live and account correctly");
        } else {
            assert_eq!(
                ndirect_probe::counter(Counter::FlopsIssued),
                0,
                "a disabled probe build must never touch a counter"
            );
            assert_eq!(flops_delta, 0, "conv moved a counter in a disabled build");
            assert_eq!(
                HIST.count(),
                0,
                "probe_hist! recorded into a histogram in a disabled build"
            );
            for (name, ns) in costs {
                assert!(
                    ns < DISABLED_NS_PER_CALL,
                    "{name} costs {ns:.3} ns/call with the probe disabled \
                     (budget {DISABLED_NS_PER_CALL} ns): instrumentation leaked into the hot path"
                );
            }
            eprintln!("guard OK: disabled probes compile to nothing");
        }
    }

    // The same conv timed as a bench label, so enabled-vs-disabled runs
    // can be compared against each other and against try_overhead.
    let mut group = c.benchmark_group("probe_overhead");
    group.sample_size(if guard { 1 } else { 20 });
    group.throughput(Throughput::Elements(shape.flops()));
    let label = if ndirect_probe::ENABLED {
        "conv_probe_enabled"
    } else {
        "conv_probe_disabled"
    };
    group.bench_function(label, |b| {
        b.iter(|| {
            try_conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)
                .expect("valid problem")
        });
    });
    group.finish();
}

bench_group!(benches, bench_probe_overhead);
bench_main!(benches);

//! Figure 8 as a bench: the embedded regime — single-thread,
//! batch-1 runs of small layers (the RPi 4 experiment's single-core half;
//! the multi-core half is in the figures harness where thread count is
//! configurable).

use ndirect_bench::harness::{BenchmarkId, Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_baselines::{blocked, im2col, indirect};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};

fn bench_single_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_single_core");
    group.sample_size(10);
    let pool = StaticPool::new(1);
    let platform = ndirect_platform::host();

    // The small-spatial layers that dominate the RPi plot's right half.
    for id in [15usize, 16, 18, 20] {
        let layer = table4::layer_by_id(id).unwrap();
        let shape = layer.shape(1);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, id as u64);
        group.throughput(Throughput::Elements(shape.flops()));

        let sched = Schedule::derive(&platform, &shape, 1);
        group.bench_with_input(BenchmarkId::new("NDIRECT", id), &id, |b, _| {
            b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
        });
        group.bench_with_input(BenchmarkId::new("im2col+GEMM", id), &id, |b, _| {
            b.iter(|| im2col::conv_im2col(&pool, &p.input, &p.filter, &shape));
        });
        let ops = blocked::prepare_blocked(&p.input, &p.filter, &shape);
        group.bench_with_input(BenchmarkId::new("LIBXSMM", id), &id, |b, _| {
            b.iter(|| blocked::conv_blocked(&pool, &ops.input, &ops.filter, &shape));
        });
        let in_nhwc = p.input.to_layout(ActLayout::Nhwc);
        let f_krsc = p.filter.to_layout(FilterLayout::Krsc);
        group.bench_with_input(BenchmarkId::new("XNNPACK", id), &id, |b, _| {
            b.iter(|| indirect::conv_indirect(&pool, &in_nhwc, &f_krsc, &shape));
        });
    }
    group.finish();
}

bench_group!(benches, bench_single_core);
bench_main!(benches);

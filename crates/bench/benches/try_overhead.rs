//! Overhead of the fallible API layer: `try_conv_ndirect_with` against
//! the panicking wrapper on a representative ResNet layer. Validation
//! happens once at the boundary (shape/layout/dim checks plus the
//! runtime ISA probe), so both labels should report the same time to
//! within run-to-run noise.

use ndirect_bench::harness::{Criterion, Throughput};
use ndirect_bench::{bench_group, bench_main};
use ndirect_core::{conv_ndirect_with, try_conv_ndirect_with, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};

fn bench_try_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("try_overhead");
    group.sample_size(20);
    let pool = StaticPool::new(1);
    let platform = ndirect_platform::host();

    // Layer 10: C128 K128 28x28 3x3 — a mid-network ResNet-50 conv.
    let layer = table4::layer_by_id(10).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 10);
    group.throughput(Throughput::Elements(shape.flops()));
    let sched = Schedule::derive(&platform, &shape, 1);

    group.bench_function("panicking", |b| {
        b.iter(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched));
    });
    group.bench_function("fallible", |b| {
        b.iter(|| {
            try_conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)
                .expect("valid problem")
        });
    });
    group.finish();
}

bench_group!(benches, bench_try_overhead);
bench_main!(benches);

//! Deterministic pseudo-random numbers without external crates.
//!
//! [`Rng64`] is an xoshiro256** generator seeded through SplitMix64 (the
//! seeding procedure its authors recommend). It is *not* cryptographic; it
//! exists so experiments and property tests are reproducible from a `u64`
//! seed on every platform — the same contract the workspace previously got
//! from `rand::rngs::StdRng::seed_from_u64`.

/// A seedable, deterministic pseudo-random generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed. Distinct seeds give
    /// independent-looking streams; the same seed always gives the same
    /// stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32 bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa-width bits -> exactly representable in [0, 1).
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo < hi, "empty f32 range");
        lo + (hi - lo) * self.next_f32()
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift bounded sampling; span is tiny relative to 2^64,
        // so modulo bias is negligible for experiment data.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as usize
    }

    /// Uniform `i32` in `[lo, hi]` (inclusive).
    #[inline]
    pub fn gen_range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo <= hi, "empty i32 range {lo}..={hi}");
        let span = (hi as i64 - lo as i64 + 1) as u64;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as i64) as i32
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniformly chosen element of `items`. Panics on an empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_range_usize(0, items.len())]
    }

    /// Fills `dst` with uniform values in `[lo, hi)`.
    pub fn fill_f32(&mut self, dst: &mut [f32], lo: f32, hi: f32) {
        for x in dst {
            *x = self.gen_range_f32(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_stays_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn range_endpoints_respected() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.gen_range_f32(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&x), "{x}");
            let n = r.gen_range_usize(5, 9);
            assert!((5..9).contains(&n), "{n}");
            let i = r.gen_range_i32(-31, 31);
            assert!((-31..=31).contains(&i), "{i}");
        }
    }

    #[test]
    fn usize_range_hits_every_value() {
        let mut r = Rng64::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.gen_range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = Rng64::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_is_uniformish() {
        let mut r = Rng64::seed_from_u64(17);
        let items = [1, 2, 3];
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[*r.choose(&items) - 1] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }
}

//! A minimal JSON value, serializer, and strict parser.
//!
//! Covers exactly what the workspace persists — schedule caches, figure
//! data, platform descriptions: objects, arrays, strings, finite numbers,
//! booleans, and null. Object insertion order is preserved so serialized
//! output is stable across runs (a property the figure-diffing scripts
//! rely on).

use std::fmt::Write as _;

/// A parsed or to-be-serialized JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse or extraction failure, with a human-readable message and the
/// byte offset where parsing stopped (0 for extraction errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input where the error occurred.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>, at: usize) -> Result<T, JsonError> {
    Err(JsonError {
        msg: msg.into(),
        at,
    })
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for a numeric value.
    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }

    /// Convenience constructor for a `usize` value.
    pub fn usize(x: usize) -> Json {
        Json::Num(x as f64)
    }

    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Member lookup that reports a typed error instead of `None`.
    pub fn require(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError {
                msg: format!("missing key {key:?}"),
                at: 0,
            })
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integer number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members, if an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// `usize` member extraction with a typed error.
    pub fn usize_field(&self, key: &str) -> Result<usize, JsonError> {
        self.require(key)?.as_usize().ok_or_else(|| JsonError {
            msg: format!("key {key:?} is not a non-negative integer"),
            at: 0,
        })
    }

    /// `&str` member extraction with a typed error.
    pub fn str_field(&self, key: &str) -> Result<&str, JsonError> {
        self.require(key)?.as_str().ok_or_else(|| JsonError {
            msg: format!("key {key:?} is not a string"),
            at: 0,
        })
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// final line, matching `serde_json::to_string_pretty` closely enough
    /// for diffs.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Serializes compactly (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            Json::Arr(_) => out.push_str("[]"),
            Json::Obj(_) => out.push_str("{}"),
            other => other.write_compact(out),
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// anything else after the value is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err("trailing characters after JSON value", pos);
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input", *pos),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        Some(c) => err(format!("unexpected character {:?}", *c as char), *pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        err(format!("expected {lit}"), *pos)
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    // The scanned range is ASCII digits/sign/exponent bytes by
    // construction, but fail as a parse error rather than assert it.
    let Ok(text) = std::str::from_utf8(&bytes[start..*pos]) else {
        return err("invalid number bytes".to_owned(), start);
    };
    match text.parse::<f64>() {
        Ok(x) if x.is_finite() => Ok(Json::Num(x)),
        _ => err(format!("invalid number {text:?}"), start),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return err("unterminated string", *pos),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok());
                        match hex.and_then(char::from_u32) {
                            Some(c) => {
                                out.push(c);
                                *pos += 4;
                            }
                            // Surrogate pairs are not needed for our data.
                            None => return err("invalid \\u escape", *pos),
                        }
                    }
                    _ => return err("invalid escape", *pos),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError {
                        msg: "invalid UTF-8 in string".into(),
                        at: *pos,
                    })?;
                // `rest` starts at a byte the `Some(_)` arm just matched,
                // so a first char exists; treat the impossible as EOF.
                let Some(ch) = rest.chars().next() else {
                    return err("unterminated string", *pos);
                };
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err("expected ',' or ']'", *pos),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return err("expected string key", *pos);
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return err("expected ':'", *pos);
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return err("expected ',' or '}'", *pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_pretty_and_compact() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("nDirect")),
            ("threads".into(), Json::usize(64)),
            ("ratio".into(), Json::num(0.5)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::usize(3))])),
        ]);
        for text in [v.pretty(), v.compact()] {
            assert_eq!(Json::parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#"{"s": "a\"b\\c\ndAé"}"#).unwrap();
        assert_eq!(v.str_field("s").unwrap(), "a\"b\\c\ndAé");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{not json", "[1,", "{\"a\":}", "", "1 2", "{\"a\" 1}", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_non_finite_numbers() {
        assert!(Json::parse("1e999").is_err());
    }

    #[test]
    fn extraction_helpers_give_typed_errors() {
        let v = Json::parse(r#"{"n": 3, "s": "x", "neg": -1}"#).unwrap();
        assert_eq!(v.usize_field("n").unwrap(), 3);
        assert_eq!(v.str_field("s").unwrap(), "x");
        assert!(v.usize_field("neg").is_err());
        assert!(v.usize_field("missing").is_err());
        assert!(v.str_field("n").is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::usize(42).compact(), "42");
        assert_eq!(Json::num(2.5).compact(), "2.5");
    }

    #[test]
    fn order_is_preserved() {
        let text = r#"{"z": 1, "a": 2}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.compact(), r#"{"z":1,"a":2}"#);
    }
}

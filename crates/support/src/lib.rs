//! Zero-dependency support utilities for the nDirect workspace.
//!
//! The workspace runs in offline, locked-down build environments, so
//! everything that a third-party crate would normally provide — seeded
//! pseudo-random data for experiments, JSON persistence for tuning caches
//! and figure output — is implemented here against `std` only:
//!
//! * [`rng`] — a small, fast, deterministic PRNG (SplitMix64 seeding an
//!   xoshiro256**-style generator) with the uniform-range helpers the
//!   fillers, the autotuner, and the hand-rolled property tests need;
//! * [`json`] — a minimal JSON value type with a serializer and a strict
//!   recursive-descent parser, enough for schedule caches and figure data.

// This crate has no business touching raw pointers; the auditor's
// lint-header rule holds that line at compile time.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod json;
pub mod rng;

pub use json::{Json, JsonError};
pub use rng::Rng64;

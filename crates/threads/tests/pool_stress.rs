//! Stress and property tests for the static pool.

use ndirect_support::Rng64;
use ndirect_threads::{chunk_static, Grid2, PoolError, StaticPool};
use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn many_small_regions_on_one_pool() {
    // The conv drivers enter a parallel region per operator call; the pool
    // must sustain thousands of fork-joins without leaking or deadlocking.
    let pool = StaticPool::new(4);
    let counter = AtomicUsize::new(0);
    for _ in 0..2000 {
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert_eq!(counter.load(Ordering::Relaxed), 8000);
}

#[test]
fn pools_can_coexist() {
    // Model + tuner may hold separate pools simultaneously.
    let a = StaticPool::new(2);
    let b = StaticPool::new(3);
    let count = AtomicUsize::new(0);
    a.run(|_| {
        count.fetch_add(1, Ordering::Relaxed);
    });
    b.run(|_| {
        count.fetch_add(10, Ordering::Relaxed);
    });
    a.run(|_| {
        count.fetch_add(100, Ordering::Relaxed);
    });
    assert_eq!(count.load(Ordering::Relaxed), 2 + 30 + 200);
}

#[test]
fn dropping_pool_mid_program_is_clean() {
    for _ in 0..20 {
        let pool = StaticPool::new(3);
        let c = AtomicUsize::new(0);
        pool.run(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
    }
}

#[test]
fn writes_before_barrier_are_visible_after_run() {
    // The implicit barrier must publish all worker writes to the caller.
    let pool = StaticPool::new(8);
    let mut data = vec![0usize; 64];
    {
        let slices: Vec<std::sync::Mutex<&mut [usize]>> = data
            .chunks_mut(8)
            .map(std::sync::Mutex::new)
            .collect();
        pool.run(|tid| {
            let mut guard = slices[tid].lock().unwrap();
            for (i, x) in guard.iter_mut().enumerate() {
                *x = tid * 100 + i;
            }
        });
    }
    for tid in 0..8 {
        for i in 0..8 {
            assert_eq!(data[tid * 8 + i], tid * 100 + i);
        }
    }
}

#[test]
fn static_chunks_tile_grid_work() {
    let mut rng = Rng64::seed_from_u64(0xb001);
    for case in 0..256 {
        let total = rng.gen_range_usize(0, 10_000);
        let threads = rng.gen_range_usize(1, 32);
        let mut covered = 0usize;
        for r in chunk_static(total, threads) {
            covered += r.len();
        }
        assert_eq!(covered, total, "case {case}: total={total} threads={threads}");
    }
}

#[test]
fn every_factorization_covers_all_threads() {
    for threads in 1usize..=64 {
        for g in Grid2::factorizations(threads) {
            assert_eq!(g.threads(), threads);
            let mut seen = std::collections::HashSet::new();
            for tid in 0..threads {
                assert!(seen.insert(g.coords(tid)), "duplicate coords");
            }
        }
    }
}

#[test]
fn pool_survives_panicking_jobs_interleaved_with_real_work() {
    // Poisoned-region stress: alternate panicking regions with productive
    // ones and confirm the pool never wedges, never loses threads, and the
    // reentrancy flag is always released.
    let pool = StaticPool::new(4);
    let good = AtomicUsize::new(0);
    for round in 0..50 {
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == round % 4 {
                    panic!("round {round} poisons tid {tid}");
                }
            });
        }));
        assert!(boom.is_err(), "round {round} should propagate the panic");
        pool.try_run(|_| {
            good.fetch_add(1, Ordering::Relaxed);
        })
        .expect("pool must be reusable right after a panicking region");
    }
    assert_eq!(good.load(Ordering::Relaxed), 200);
}

#[test]
fn nested_run_from_every_thread_is_rejected() {
    let pool = StaticPool::new(3);
    let rejected = AtomicUsize::new(0);
    pool.run(|_| {
        if pool.try_run(|_| {}) == Err(PoolError::NestedRun) {
            rejected.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert_eq!(rejected.load(Ordering::Relaxed), 3);
}

//! 2-D thread grids: the paper's `PTn × PTk` mapping.

/// A factorisation of a thread team into a `ptn × ptk` grid.
///
/// `ptn` threads split the batch/spatial (`N`, `H`, `W`) dimensions and
/// `ptk` threads split the output-channel (`K`) dimension, mirroring §6.1:
/// thread `tid`'s coordinates are `(tid / ptk, tid % ptk)` so threads with
/// consecutive ids share the same `N/H/W` slice (and hence input-tensor
/// working set) while covering different channel blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2 {
    ptn: usize,
    ptk: usize,
}

impl Grid2 {
    /// Builds a grid; both extents must be ≥ 1.
    pub fn new(ptn: usize, ptk: usize) -> Self {
        assert!(ptn >= 1 && ptk >= 1, "grid extents must be >= 1");
        Self { ptn, ptk }
    }

    /// A degenerate 1×1 grid (sequential execution).
    pub const fn sequential() -> Self {
        Self { ptn: 1, ptk: 1 }
    }

    /// Total number of threads `PT = PTn · PTk`.
    #[inline]
    pub fn threads(&self) -> usize {
        self.ptn * self.ptk
    }

    /// Extent along the batch/spatial axis.
    #[inline]
    pub fn ptn(&self) -> usize {
        self.ptn
    }

    /// Extent along the output-channel axis.
    #[inline]
    pub fn ptk(&self) -> usize {
        self.ptk
    }

    /// Grid coordinates `(tn, tk)` of a flat thread id.
    #[inline]
    pub fn coords(&self, tid: usize) -> (usize, usize) {
        debug_assert!(tid < self.threads());
        (tid / self.ptk, tid % self.ptk)
    }

    /// Flat thread id of grid coordinates.
    #[inline]
    pub fn tid(&self, tn: usize, tk: usize) -> usize {
        debug_assert!(tn < self.ptn && tk < self.ptk);
        tn * self.ptk + tk
    }

    /// All factorisations `ptn × ptk = threads`, used by the thread-mapping
    /// model to pick the FAI-maximizing grid and by the ablation benches to
    /// sweep alternatives.
    pub fn factorizations(threads: usize) -> Vec<Grid2> {
        assert!(threads >= 1);
        (1..=threads)
            .filter(|ptn| threads % ptn == 0)
            .map(|ptn| Grid2::new(ptn, threads / ptn))
            .collect()
    }

    /// JSON form for schedule persistence: `{"ptn": …, "ptk": …}`.
    pub fn to_json(&self) -> ndirect_support::Json {
        ndirect_support::Json::Obj(vec![
            ("ptn".into(), ndirect_support::Json::usize(self.ptn)),
            ("ptk".into(), ndirect_support::Json::usize(self.ptk)),
        ])
    }

    /// Parses the [`Grid2::to_json`] form, validating extents.
    pub fn from_json(v: &ndirect_support::Json) -> Result<Grid2, ndirect_support::JsonError> {
        let (ptn, ptk) = (v.usize_field("ptn")?, v.usize_field("ptk")?);
        if ptn == 0 || ptk == 0 {
            return Err(ndirect_support::JsonError {
                msg: "grid extents must be >= 1".into(),
                at: 0,
            });
        }
        Ok(Grid2 { ptn, ptk })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_round_trip() {
        let g = Grid2::new(3, 4);
        assert_eq!(g.threads(), 12);
        for tid in 0..12 {
            let (tn, tk) = g.coords(tid);
            assert_eq!(g.tid(tn, tk), tid);
            assert!(tn < 3 && tk < 4);
        }
    }

    #[test]
    fn consecutive_tids_share_tn() {
        let g = Grid2::new(2, 4);
        assert_eq!(g.coords(0).0, g.coords(3).0);
        assert_ne!(g.coords(3).0, g.coords(4).0);
    }

    #[test]
    fn factorizations_cover_all_divisors() {
        let f = Grid2::factorizations(12);
        let pairs: Vec<(usize, usize)> = f.iter().map(|g| (g.ptn(), g.ptk())).collect();
        assert_eq!(
            pairs,
            vec![(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]
        );
    }

    #[test]
    fn sequential_grid() {
        let g = Grid2::sequential();
        assert_eq!(g.threads(), 1);
        assert_eq!(g.coords(0), (0, 0));
    }

    #[test]
    fn json_round_trip() {
        let g = Grid2::new(3, 4);
        assert_eq!(Grid2::from_json(&g.to_json()).unwrap(), g);
        // Degenerate extents parse as an error, not a panic.
        let bad = ndirect_support::Json::parse(r#"{"ptn": 0, "ptk": 2}"#).unwrap();
        assert!(Grid2::from_json(&bad).is_err());
    }
}

//! Static-partition parallel runtime for the nDirect kernels.
//!
//! The paper parallelizes convolutions with OpenMP *static* scheduling: a
//! fixed team of `PT` threads, each handed a precomputed slice of the
//! iteration space, organised as a 2-D grid `PTn × PTk` over the
//! batch/spatial dimensions and the output-channel dimension (§6). This
//! crate reproduces those semantics:
//!
//! * [`StaticPool`] — a persistent fork-join pool; every [`StaticPool::run`]
//!   invocation executes one closure on all `PT` threads (the caller
//!   participates as thread 0) and returns when the last thread finishes,
//!   exactly like entering/leaving an `omp parallel` region;
//! * [`split_static`] / [`chunk_static`] — the `schedule(static)` iteration
//!   split;
//! * [`Grid2`] — the `PTn × PTk` thread-coordinate mapping.
//!
//! There is deliberately no work stealing: the paper's analytic model
//! (Eq. 5–6) assumes deterministic static partitions, and determinism is
//! what lets the test suite require bitwise-identical results across thread
//! counts.

#![warn(missing_docs)]

mod cancel;
mod error;
mod grid;
mod pool;
mod shared;
mod split;

pub use cancel::CancelToken;
pub use error::PoolError;
pub use grid::Grid2;
pub use pool::StaticPool;
pub use shared::SharedSlice;
pub use split::{chunk_static, split_static};

/// Number of hardware threads available to this process.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

//! A persistent fork-join pool with OpenMP `parallel`-region semantics.
//!
//! Built on `std::sync` only (a `Mutex`/`Condvar` job board) so the crate
//! carries no external dependencies. Hardened for production use:
//!
//! * nested [`StaticPool::run`] is detected and reported as
//!   [`PoolError::NestedRun`] from [`StaticPool::try_run`] (the panicking
//!   `run` wrapper keeps the seed behaviour) instead of deadlocking;
//! * the `in_region` reentrancy flag is cleared by an RAII guard, so a
//!   panicking region closure cannot wedge the pool;
//! * a worker whose thread has died (panic payload with a panicking `Drop`,
//!   stack exhaustion recovery, anything that escapes `catch_unwind`) is
//!   respawned at the next region entry — the pool degrades for one region
//!   and then heals, it never silently loses parallelism.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::PoolError;

/// A fixed team of `PT` threads executing one closure per [`StaticPool::run`]
/// call — thread 0 is the caller, threads `1..PT` are persistent workers.
///
/// Matches `#pragma omp parallel num_threads(PT)`:
///
/// * every thread executes the same closure, receiving its thread id;
/// * `run` returns only when all threads have finished (implicit barrier);
/// * a panic on any thread is propagated to the caller after the barrier.
///
/// The closure borrows from the caller's stack (no `'static` bound); the
/// barrier at the end of `run` is what makes that sound.
pub struct StaticPool {
    size: usize,
    board: Arc<JobBoard>,
    /// Worker join handles, indexed by `tid - 1`; rebuilt lazily when a
    /// worker dies (see [`StaticPool::ensure_workers`]).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Guards against nested `run` on the same pool, which would deadlock
    /// (workers are busy executing the outer region's job).
    in_region: AtomicBool,
    /// The fork-join latch, allocated once and re-armed per region
    /// (regions are serialized by `in_region`, see [`Latch::reset`]), so
    /// steady-state region dispatch performs no heap allocation.
    region_latch: Arc<Latch>,
}

impl std::fmt::Debug for StaticPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticPool")
            .field("size", &self.size)
            .field("in_region", &self.in_region.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// A lifetime-erased `&(dyn Fn(usize) + Sync)` plus completion accounting.
struct Job {
    /// Pointer to the caller's closure, valid until `latch` releases `run`.
    data: *const (),
    /// Monomorphized trampoline that reconstitutes the closure type.
    call: unsafe fn(*const (), usize),
    tid: usize,
    latch: Arc<Latch>,
}

// SAFETY: `data` points at a `Sync` closure (enforced by `run`'s bounds),
// and `run` keeps the closure alive until every job has signalled `latch`.
unsafe impl Send for Job {}

/// The shared queue workers pull jobs from. `closed` tells workers to exit.
struct JobBoard {
    queue: Mutex<BoardState>,
    available: Condvar,
}

struct BoardState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobBoard {
    /// `capacity` is the most jobs ever queued at once (`size − 1`);
    /// pre-sizing the deque keeps region dispatch allocation-free.
    fn new(capacity: usize) -> Self {
        Self {
            queue: Mutex::new(BoardState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut st = lock_unpoisoned(&self.queue);
        st.jobs.push_back(job);
        drop(st);
        self.available.notify_one();
    }

    /// Blocks until a job arrives or the board closes (returns `None`).
    fn pop(&self) -> Option<Job> {
        let mut st = lock_unpoisoned(&self.queue);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self
                .available
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn close(&self) {
        lock_unpoisoned(&self.queue).closed = true;
        self.available.notify_all();
    }
}

/// Locks a mutex, recovering from poisoning: a worker that panicked while
/// holding the lock leaves the plain data (a queue of jobs) fully usable.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Countdown latch that also collects the first panic payload.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Re-arms a drained latch for the next region. Sound because `wait`
    /// returns only after every `count_down` of the previous region has
    /// run under the state mutex, and regions are serialized by the
    /// pool's `in_region` flag — no thread can still be counting down.
    fn reset(&self, count: usize) {
        let mut st = lock_unpoisoned(&self.state);
        debug_assert_eq!(st.remaining, 0, "latch reset while a region is live");
        st.remaining = count;
        st.panic = None;
    }

    fn count_down(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = lock_unpoisoned(&self.state);
        if st.panic.is_none() {
            st.panic = panic;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = lock_unpoisoned(&self.state);
        while st.remaining != 0 {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.panic.take()
    }
}

/// Clears the pool's `in_region` flag on drop, so the flag is released on
/// every exit path out of a region — normal return, propagated worker
/// panic, or a panic escaping the caller's own closure.
struct RegionGuard<'a>(&'a AtomicBool);

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

fn spawn_worker(board: Arc<JobBoard>, index: usize) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("ndirect-worker-{index}"))
        .spawn(move || {
            while let Some(job) = board.pop() {
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    let _busy = ndirect_probe::probe_span!(Worker, job.tid);
                    // SAFETY: `job.data`/`job.call` were erased from a live
                    // `&F` in `try_run`, which blocks on `latch` until we
                    // count down below.
                    unsafe { (job.call)(job.data, job.tid) }
                }));
                job.latch.count_down(result.err());
            }
        })
}

impl StaticPool {
    /// Creates a pool of `size ≥ 1` threads (spawning `size − 1` workers).
    pub fn new(size: usize) -> Self {
        Self::try_new(size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible pool construction: `size` of 0 and worker-spawn failures
    /// (thread exhaustion) become typed errors instead of panics.
    pub fn try_new(size: usize) -> Result<Self, PoolError> {
        if size == 0 {
            return Err(PoolError::ZeroSize);
        }
        let board = Arc::new(JobBoard::new(size - 1));
        let mut handles = Vec::new();
        for i in 1..size {
            match spawn_worker(Arc::clone(&board), i) {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Unwind: close the board so already-spawned workers
                    // exit, then report.
                    board.close();
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(PoolError::WorkerSpawn {
                        worker: i,
                        kind: e.kind(),
                    });
                }
            }
        }
        Ok(Self {
            size,
            board,
            handles: Mutex::new(handles),
            in_region: AtomicBool::new(false),
            region_latch: Arc::new(Latch::new(0)),
        })
    }

    /// A pool sized to the host's hardware parallelism.
    pub fn with_hardware_threads() -> Self {
        Self::new(crate::hardware_threads())
    }

    /// Number of threads in the team (including the caller).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of worker threads currently alive (excludes the caller).
    /// After a worker death this reads low until the next region entry
    /// respawns the worker; exposed for the hardening tests.
    pub fn live_workers(&self) -> usize {
        lock_unpoisoned(&self.handles)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Respawns any worker whose thread has exited. A worker only dies when
    /// something escapes its `catch_unwind` (e.g. a panic payload whose
    /// `Drop` panics); the next region entry heals the team so one bad job
    /// cannot permanently strand the pool. Spawn failures are reported, not
    /// panicked, so the caller can fall back to fewer threads.
    fn ensure_workers(&self) -> Result<(), PoolError> {
        let mut handles = lock_unpoisoned(&self.handles);
        for (i, slot) in handles.iter_mut().enumerate() {
            if slot.is_finished() {
                let dead = std::mem::replace(
                    slot,
                    spawn_worker(Arc::clone(&self.board), i + 1).map_err(|e| {
                        PoolError::WorkerSpawn {
                            worker: i + 1,
                            kind: e.kind(),
                        }
                    })?,
                );
                // Collect the dead thread; its panic (if any) was already
                // reported through the latch of the region that killed it.
                let _ = dead.join();
            }
        }
        Ok(())
    }

    /// Executes `f(tid)` on every thread of the team and waits for all of
    /// them (the caller runs `tid = 0`). Panics from any thread propagate
    /// after the barrier.
    ///
    /// `run` is **not reentrant**: calling it again from inside a region on
    /// the same pool would deadlock (the workers are occupied by the outer
    /// region), so it panics immediately instead. Use [`StaticPool::try_run`]
    /// to get the condition as a typed error, or a separate pool for nested
    /// parallelism.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.try_run(f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`StaticPool::run`]: nested invocation returns
    /// [`PoolError::NestedRun`] instead of deadlocking or panicking, and a
    /// failure to heal the worker team surfaces as
    /// [`PoolError::WorkerSpawn`]. Panics *from the region closure* still
    /// propagate as panics — they are the caller's bug, not a pool fault —
    /// after every thread has reached the barrier (so the pool stays
    /// usable).
    pub fn try_run<F>(&self, f: F) -> Result<(), PoolError>
    where
        F: Fn(usize) + Sync,
    {
        if self.size == 1 {
            // AcqRel: Acquire pairs with the Release in `RegionGuard::drop`
            // so region N+1 observes region N's effects; the Release half
            // publishes the flag itself to any concurrent `try_run` caller.
            if self.in_region.swap(true, Ordering::AcqRel) {
                return Err(PoolError::NestedRun);
            }
            let _guard = RegionGuard(&self.in_region);
            ndirect_probe::probe_count!(Regions, 1);
            let _region = ndirect_probe::probe_span!(Region, 1);
            {
                let _busy = ndirect_probe::probe_span!(Worker, 0);
                f(0);
            }
            return Ok(());
        }
        // AcqRel for the same pairing as the single-thread path above.
        if self.in_region.swap(true, Ordering::AcqRel) {
            return Err(PoolError::NestedRun);
        }
        // Release the reentrancy flag on every exit path (incl. panics).
        let _guard = RegionGuard(&self.in_region);
        ndirect_probe::probe_count!(Regions, 1);
        let _region = ndirect_probe::probe_span!(Region, self.size);

        // Heal the team before dispatching: a worker killed by a previous
        // region must not leave its share of the iteration space undone.
        self.ensure_workers()?;

        // SAFETY: callers must pass a `data` pointer obtained from `&f` for
        // an `F` that outlives the call; the only call sites are the jobs
        // pushed below, which the region's latch confines to `f`'s lifetime.
        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), tid: usize) {
            // SAFETY: `data` was produced from `&f` below and `f` is alive
            // until the latch in `try_run` releases.
            let f = unsafe { &*(data as *const F) };
            f(tid);
        }

        // Re-arm the pool's latch instead of allocating one per region.
        self.region_latch.reset(self.size);
        let latch = &self.region_latch;
        for tid in 1..self.size {
            self.board.push(Job {
                data: &f as *const F as *const (),
                call: trampoline::<F>,
                tid,
                latch: Arc::clone(latch),
            });
        }

        // The caller is thread 0. Catch its panic so we still reach the
        // barrier (the workers hold pointers into our stack frame).
        let own = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _busy = ndirect_probe::probe_span!(Worker, 0);
            f(0)
        }));
        latch.count_down(own.err());

        let wait = {
            let _barrier = ndirect_probe::probe_phase!(Barrier);
            latch.wait()
        };
        if let Some(payload) = wait {
            std::panic::resume_unwind(payload);
        }
        Ok(())
    }

    /// Convenience: static-partition `0..total` across the team and hand
    /// each thread its `(tid, range)`.
    pub fn run_partitioned<F>(&self, total: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        let parts = self.size;
        self.run(|tid| f(tid, crate::split_static(total, parts, tid)));
    }

    /// Test-only fault injection: makes at least one worker thread exit its
    /// loop (as if something had escaped its `catch_unwind`), so the
    /// respawn path in [`StaticPool::ensure_workers`] can be exercised. The
    /// board is briefly marked closed — long enough for a worker to observe
    /// it and return — then reopened.
    #[doc(hidden)]
    pub fn __test_kill_one_worker(&self) {
        let board = &self.board;
        {
            let mut st = lock_unpoisoned(&board.queue);
            st.closed = true;
        }
        board.available.notify_one();
        // Wait until exactly one worker exits, then reopen.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while self.live_workers() == self.size - 1 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        lock_unpoisoned(&board.queue).closed = false;
    }
}

impl Drop for StaticPool {
    fn drop(&mut self) {
        // Closing the board stops the worker loops.
        self.board.close();
        for h in lock_unpoisoned(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_tid_exactly_once() {
        let pool = StaticPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = StaticPool::new(1);
        let hit = std::sync::atomic::AtomicBool::new(false);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            hit.store(true, Ordering::Relaxed);
        });
        assert!(hit.load(Ordering::Relaxed));
    }

    #[test]
    fn zero_size_is_a_typed_error() {
        match StaticPool::try_new(0) {
            Err(PoolError::ZeroSize) => {}
            other => panic!("expected ZeroSize, got {other:?}"),
        }
    }

    #[test]
    fn reusable_across_calls() {
        let pool = StaticPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn closure_can_borrow_stack_data() {
        let pool = StaticPool::new(4);
        let data = [1usize, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        pool.run(|tid| {
            sum.fetch_add(data[tid], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn run_partitioned_covers_range() {
        let pool = StaticPool::new(3);
        let total = 100;
        let seen = (0..total).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.run_partitioned(total, |_tid, range| {
            for i in range {
                seen[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = StaticPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool survives a panicking region.
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caller_panic_still_waits_for_workers() {
        let pool = StaticPool::new(4);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 0 {
                    panic!("caller boom");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // All three workers completed before the panic escaped.
        assert_eq!(finished.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_try_run_returns_typed_error() {
        let pool = StaticPool::new(2);
        let inner = Mutex::new(None);
        pool.run(|tid| {
            if tid == 0 {
                *lock_unpoisoned(&inner) = Some(pool.try_run(|_| {}));
            }
        });
        assert_eq!(
            lock_unpoisoned(&inner).take(),
            Some(Err(PoolError::NestedRun))
        );
        // The flag resets; the pool remains usable.
        let c = AtomicUsize::new(0);
        pool.run(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn nested_run_on_single_thread_pool_is_detected() {
        let pool = StaticPool::new(1);
        let seen = Mutex::new(None);
        pool.run(|_| {
            *lock_unpoisoned(&seen) = Some(pool.try_run(|_| {}));
        });
        assert_eq!(
            lock_unpoisoned(&seen).take(),
            Some(Err(PoolError::NestedRun))
        );
        // And still usable afterwards.
        pool.run(|_| {});
    }

    #[test]
    fn nested_run_panics_instead_of_deadlocking() {
        let pool = StaticPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 0 {
                    pool.run(|_| {});
                }
            });
        }));
        assert!(result.is_err());
        // The guard resets; the pool remains usable.
        let c = AtomicUsize::new(0);
        pool.run(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn in_region_flag_cleared_when_region_closure_panics() {
        // Regression test for the RAII region guard: after a panicking
        // region, try_run must NOT report NestedRun.
        let pool = StaticPool::new(2);
        for _ in 0..3 {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(|_| panic!("every thread panics"));
            }));
            assert!(result.is_err());
            assert!(
                !pool.in_region.load(Ordering::Acquire),
                "in_region must be cleared by the RAII guard"
            );
            // A fresh region starts cleanly.
            pool.try_run(|_| {}).expect("pool reusable after panic");
        }
    }

    #[test]
    fn dead_worker_is_respawned_on_next_region() {
        let pool = StaticPool::new(3);
        pool.run(|_| {});
        assert_eq!(pool.live_workers(), 2);
        pool.__test_kill_one_worker();
        assert!(pool.live_workers() < 2, "test hook should kill a worker");
        // The next region heals the team and computes the full result.
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 3);
        assert_eq!(pool.live_workers(), 2, "worker respawned");
    }

    #[test]
    fn oversubscription_works() {
        // More threads than cores must still complete (the paper's Fig. 9
        // hyper-threading experiment oversubscribes 4x).
        let pool = StaticPool::new(16);
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}

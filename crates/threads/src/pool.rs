//! A persistent fork-join pool with OpenMP `parallel`-region semantics.
//!
//! Built on `std::sync` only (a `Mutex`/`Condvar` job board) so the crate
//! carries no external dependencies. Hardened for production use:
//!
//! * nested [`StaticPool::run`] is detected and reported as
//!   [`PoolError::NestedRun`] from [`StaticPool::try_run`] (the panicking
//!   `run` wrapper keeps the seed behaviour) instead of deadlocking;
//! * the `in_region` reentrancy flag is cleared by an RAII guard, so a
//!   panicking region closure cannot wedge the pool;
//! * a worker whose thread dies (something escaping `catch_unwind`, or an
//!   injected death from the chaos hooks) is respawned **eagerly, at death
//!   detection**: the dying thread's [`DeathWatch`] guard spawns its own
//!   replacement on the way out, so the very next region already runs at
//!   full width. Region entry keeps a lazy [`StaticPool::ensure_workers`]
//!   backstop for the case where the eager respawn itself failed (thread
//!   exhaustion);
//! * a death with a job in flight counts the region latch down with a
//!   synthetic panic payload, so the dispatching caller observes a panic
//!   instead of hanging on the barrier forever;
//! * region entry can be tied to a [`CancelToken`]
//!   ([`StaticPool::try_run_cancellable`]): a token cancelled before the
//!   jobs are published returns [`PoolError::Cancelled`] without any
//!   worker ever seeing the region — the serving layer uses this so a
//!   timed-out request never occupies a kernel slot.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::cancel::CancelToken;
use crate::PoolError;

/// A fixed team of `PT` threads executing one closure per [`StaticPool::run`]
/// call — thread 0 is the caller, threads `1..PT` are persistent workers.
///
/// Matches `#pragma omp parallel num_threads(PT)`:
///
/// * every thread executes the same closure, receiving its thread id;
/// * `run` returns only when all threads have finished (implicit barrier);
/// * a panic on any thread is propagated to the caller after the barrier.
///
/// The closure borrows from the caller's stack (no `'static` bound); the
/// barrier at the end of `run` is what makes that sound.
pub struct StaticPool {
    size: usize,
    team: Arc<Team>,
    /// Guards against nested `run` on the same pool, which would deadlock
    /// (workers are busy executing the outer region's job).
    in_region: AtomicBool,
    /// The fork-join latch, allocated once and re-armed per region
    /// (regions are serialized by `in_region`, see [`Latch::reset`]), so
    /// steady-state region dispatch performs no heap allocation.
    region_latch: Arc<Latch>,
}

impl std::fmt::Debug for StaticPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticPool")
            .field("size", &self.size)
            // ORDERING: Relaxed — Debug snapshot; the values are advisory
            // and no other memory depends on them.
            .field("in_region", &self.in_region.load(Ordering::Relaxed))
            .field("worker_deaths", &self.team.deaths.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// State shared between the pool handle and its worker threads: the job
/// board, the join handles (indexed by `tid - 1`, mutated both by the
/// pool's lazy heal and by a dying worker's eager self-respawn), the
/// shutdown flag that tells a [`DeathWatch`] not to respawn, and the
/// monotonic death count exposed as the worker health probe.
struct Team {
    board: JobBoard,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    shutdown: AtomicBool,
    deaths: AtomicUsize,
    /// When nonzero, worker/region probe spans carry this value as their
    /// argument instead of the thread id, so an embedder (the serving
    /// layer) can key kernel activity in the trace by its own request
    /// trace ID. Zero — the default — preserves the tid convention.
    trace_tag: AtomicU32,
}

impl Team {
    /// The span argument for probe events: the trace tag when set,
    /// otherwise the caller's default (tid / team size).
    fn span_arg(&self, default: u32) -> u32 {
        // ORDERING: Relaxed — trace tags are observational; a stale tag
        // mislabels a probe span at worst.
        match self.trace_tag.load(Ordering::Relaxed) {
            0 => default,
            tag => tag,
        }
    }
}

/// A lifetime-erased `&(dyn Fn(usize) + Sync)` plus completion accounting.
struct Job {
    /// Pointer to the caller's closure, valid until `latch` releases `run`.
    data: *const (),
    /// Monomorphized trampoline that reconstitutes the closure type.
    call: unsafe fn(*const (), usize),
    tid: usize,
    latch: Arc<Latch>,
}

// SAFETY: `data` points at a `Sync` closure (enforced by `run`'s bounds),
// and `run` keeps the closure alive until every job has signalled `latch`.
unsafe impl Send for Job {}

/// What a worker's blocking pop produced.
enum Popped {
    /// A region job to execute.
    Job(Job),
    /// An injected death: exit the loop abnormally (the [`DeathWatch`]
    /// stays armed, so death detection and eager respawn fire).
    Die,
    /// The pool is shutting down: exit the loop normally.
    Shutdown,
}

/// The shared queue workers pull jobs from. `closed` tells workers to
/// exit; `kills` injects worker deaths for the chaos tests.
struct JobBoard {
    queue: Mutex<BoardState>,
    available: Condvar,
}

struct BoardState {
    jobs: VecDeque<Job>,
    /// Pending injected deaths (see [`StaticPool::inject_worker_death`]);
    /// consumed one per worker, only when no job is queued so an injected
    /// death never swallows a region's work item.
    kills: usize,
    closed: bool,
}

impl JobBoard {
    /// `capacity` is the most jobs ever queued at once (`size − 1`);
    /// pre-sizing the deque keeps region dispatch allocation-free.
    fn new(capacity: usize) -> Self {
        Self {
            queue: Mutex::new(BoardState {
                jobs: VecDeque::with_capacity(capacity),
                kills: 0,
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        let mut st = lock_unpoisoned(&self.queue);
        st.jobs.push_back(job);
        drop(st);
        self.available.notify_one();
    }

    /// Blocks until a job arrives, a death is injected, or the board
    /// closes.
    fn pop(&self) -> Popped {
        let mut st = lock_unpoisoned(&self.queue);
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Popped::Job(job);
            }
            if st.kills > 0 {
                st.kills -= 1;
                return Popped::Die;
            }
            if st.closed {
                return Popped::Shutdown;
            }
            st = self
                .available
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn close(&self) {
        lock_unpoisoned(&self.queue).closed = true;
        self.available.notify_all();
    }
}

/// Locks a mutex, recovering from poisoning: a worker that panicked while
/// holding the lock leaves the plain data (a queue of jobs) fully usable.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Countdown latch that also collects the first panic payload.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Re-arms a drained latch for the next region. Sound because `wait`
    /// returns only after every `count_down` of the previous region has
    /// run under the state mutex, and regions are serialized by the
    /// pool's `in_region` flag — no thread can still be counting down.
    fn reset(&self, count: usize) {
        let mut st = lock_unpoisoned(&self.state);
        debug_assert_eq!(st.remaining, 0, "latch reset while a region is live");
        st.remaining = count;
        st.panic = None;
    }

    fn count_down(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = lock_unpoisoned(&self.state);
        if st.panic.is_none() {
            st.panic = panic;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = lock_unpoisoned(&self.state);
        while st.remaining != 0 {
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.panic.take()
    }
}

/// Clears the pool's `in_region` flag on drop, so the flag is released on
/// every exit path out of a region — normal return, propagated worker
/// panic, or a panic escaping the caller's own closure.
struct RegionGuard<'a>(&'a AtomicBool);

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        // ORDERING: Release — pairs with the AcqRel swap that opens the
        // next region, so region N+1 observes region N's effects.
        self.0.store(false, Ordering::Release);
    }
}

/// The worker's death sentinel. Armed for the whole worker loop; disarmed
/// only on the clean shutdown path. If the loop exits any other way — an
/// injected death, or something escaping `catch_unwind` — the guard's
/// `Drop` runs *at the moment of death* and:
///
/// 1. bumps the team's death counter (the health probe);
/// 2. counts any in-flight job's latch down with a synthetic panic, so
///    the region's caller unblocks with an error instead of hanging;
/// 3. eagerly spawns a replacement worker into its own slot (unless the
///    pool is shutting down), so the *next* region runs at full width
///    without waiting for the lazy region-entry heal.
struct DeathWatch {
    team: Arc<Team>,
    index: usize,
    /// The latch of the job being executed, if any; cleared after the
    /// job's own `count_down`.
    pending: Option<Arc<Latch>>,
    armed: bool,
}

impl Drop for DeathWatch {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        // ORDERING: AcqRel — the Release half publishes the count to the
        // Acquire loads in `worker_deaths` / kill-injection waits; the
        // Acquire half keeps successive deaths totally ordered.
        self.team.deaths.fetch_add(1, Ordering::AcqRel);
        if let Some(latch) = self.pending.take() {
            latch.count_down(Some(Box::new(
                "pool worker died while executing a region job",
            )));
        }
        // Best effort: a failed respawn here (thread exhaustion) is healed
        // lazily by `ensure_workers` at the next region entry.
        let _ = respawn(&self.team, self.index);
    }
}

/// Spawns a replacement worker for slot `index`, unless the pool is
/// shutting down (checked under the handles lock, so it cannot race the
/// pool's drop) or the handle table is already drained.
fn respawn(team: &Arc<Team>, index: usize) -> std::io::Result<()> {
    let mut handles = lock_unpoisoned(&team.handles);
    // ORDERING: Acquire — pairs with the Release stores on shutdown so a
    // late respawn sees the close and bails instead of reviving a worker.
    if team.shutdown.load(Ordering::Acquire) || handles.len() < index {
        return Ok(());
    }
    let fresh = spawn_worker(Arc::clone(team), index)?;
    // The replaced handle is the dying thread's own; dropping it detaches
    // that thread, which is already on its way out.
    handles[index - 1] = fresh;
    Ok(())
}

fn spawn_worker(team: Arc<Team>, index: usize) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("ndirect-worker-{index}"))
        .spawn(move || worker_main(team, index))
}

fn worker_main(team: Arc<Team>, index: usize) {
    let mut watch = DeathWatch {
        team: Arc::clone(&team),
        index,
        pending: None,
        armed: true,
    };
    loop {
        match team.board.pop() {
            Popped::Job(job) => {
                watch.pending = Some(Arc::clone(&job.latch));
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    // CAST: tid < pool size (a few dozen at most), far below u32::MAX.
                    let _busy =
                        ndirect_probe::probe_span!(Worker, team.span_arg(job.tid as u32));
                    // SAFETY: `job.data`/`job.call` were erased from a live
                    // `&F` in `try_run`, which blocks on `latch` until we
                    // count down below.
                    unsafe { (job.call)(job.data, job.tid) }
                }));
                job.latch.count_down(result.err());
                watch.pending = None;
            }
            // Exit abnormally: the armed watch fires death detection.
            Popped::Die => return,
            Popped::Shutdown => {
                watch.armed = false;
                return;
            }
        }
    }
}

impl StaticPool {
    /// Creates a pool of `size ≥ 1` threads (spawning `size − 1` workers).
    pub fn new(size: usize) -> Self {
        Self::try_new(size).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible pool construction: `size` of 0 and worker-spawn failures
    /// (thread exhaustion) become typed errors instead of panics.
    pub fn try_new(size: usize) -> Result<Self, PoolError> {
        if size == 0 {
            return Err(PoolError::ZeroSize);
        }
        let team = Arc::new(Team {
            board: JobBoard::new(size - 1),
            handles: Mutex::new(Vec::with_capacity(size.saturating_sub(1))),
            shutdown: AtomicBool::new(false),
            deaths: AtomicUsize::new(0),
            trace_tag: AtomicU32::new(0),
        });
        for i in 1..size {
            match spawn_worker(Arc::clone(&team), i) {
                Ok(h) => lock_unpoisoned(&team.handles).push(h),
                Err(e) => {
                    // Unwind: close the board so already-spawned workers
                    // exit, then report.
                    // ORDERING: Release — pairs with the Acquire load in
                    // `respawn` so no worker is revived after this point.
                    team.shutdown.store(true, Ordering::Release);
                    team.board.close();
                    for h in lock_unpoisoned(&team.handles).drain(..) {
                        let _ = h.join();
                    }
                    return Err(PoolError::WorkerSpawn {
                        worker: i,
                        kind: e.kind(),
                    });
                }
            }
        }
        Ok(Self {
            size,
            team,
            in_region: AtomicBool::new(false),
            region_latch: Arc::new(Latch::new(0)),
        })
    }

    /// A pool sized to the host's hardware parallelism.
    pub fn with_hardware_threads() -> Self {
        Self::new(crate::hardware_threads())
    }

    /// Number of threads in the team (including the caller).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of worker threads currently alive (excludes the caller).
    /// Thanks to eager respawn this returns to `size − 1` shortly after a
    /// worker death, without waiting for a region entry.
    pub fn live_workers(&self) -> usize {
        lock_unpoisoned(&self.team.handles)
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// Worker health probe: how many worker deaths this pool has detected
    /// (and healed) over its lifetime. Monotonic; `0` on a healthy pool.
    pub fn worker_deaths(&self) -> usize {
        // ORDERING: Acquire — pairs with the AcqRel fetch_add in the death
        // watch so the count reflects completed heals.
        self.team.deaths.load(Ordering::Acquire)
    }

    /// Tags subsequent worker/region probe spans with `tag` (a request
    /// trace ID) instead of the thread-id convention; `0` restores the
    /// default. The serving layer brackets each `plan.execute` with this
    /// so kernel spans in the Chrome trace link back to the request batch
    /// they served. Purely observational: no effect on scheduling, and a
    /// no-op without the `probe` feature.
    pub fn set_trace_tag(&self, tag: u32) {
        // ORDERING: Relaxed — observational only; see `span_arg`.
        self.team.trace_tag.store(tag, Ordering::Relaxed);
    }

    /// Respawns any worker whose thread has exited without the death watch
    /// managing to replace it (its own respawn hit thread exhaustion).
    /// Kept as the lazy backstop at region entry so one bad moment cannot
    /// permanently strand the pool; spawn failures are reported, not
    /// panicked, so the caller can fall back to fewer threads.
    fn ensure_workers(&self) -> Result<(), PoolError> {
        let mut handles = lock_unpoisoned(&self.team.handles);
        for (i, slot) in handles.iter_mut().enumerate() {
            if slot.is_finished() {
                let dead = std::mem::replace(
                    slot,
                    spawn_worker(Arc::clone(&self.team), i + 1).map_err(|e| {
                        PoolError::WorkerSpawn {
                            worker: i + 1,
                            kind: e.kind(),
                        }
                    })?,
                );
                // Collect the dead thread; its panic (if any) was already
                // reported through the latch of the region that killed it.
                let _ = dead.join();
            }
        }
        Ok(())
    }

    /// Executes `f(tid)` on every thread of the team and waits for all of
    /// them (the caller runs `tid = 0`). Panics from any thread propagate
    /// after the barrier.
    ///
    /// `run` is **not reentrant**: calling it again from inside a region on
    /// the same pool would deadlock (the workers are occupied by the outer
    /// region), so it panics immediately instead. Use [`StaticPool::try_run`]
    /// to get the condition as a typed error, or a separate pool for nested
    /// parallelism.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.try_run(f).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`StaticPool::run`]: nested invocation returns
    /// [`PoolError::NestedRun`] instead of deadlocking or panicking, and a
    /// failure to heal the worker team surfaces as
    /// [`PoolError::WorkerSpawn`]. Panics *from the region closure* still
    /// propagate as panics — they are the caller's bug, not a pool fault —
    /// after every thread has reached the barrier (so the pool stays
    /// usable).
    pub fn try_run<F>(&self, f: F) -> Result<(), PoolError>
    where
        F: Fn(usize) + Sync,
    {
        self.try_run_inner(None, f)
    }

    /// Cancellable region entry: like [`StaticPool::try_run`], but checks
    /// `cancel` at the two points where the region is still free to not
    /// happen — before contending for the region at all, and again after
    /// the team is healed but before any job is published. A token
    /// cancelled by then returns [`PoolError::Cancelled`] and **no thread
    /// ever executes `f`**; a cancellation arriving later does not abort
    /// the region (in-flight work always runs to the barrier, which is
    /// what keeps the borrow of `f` sound).
    pub fn try_run_cancellable<F>(&self, cancel: &CancelToken, f: F) -> Result<(), PoolError>
    where
        F: Fn(usize) + Sync,
    {
        self.try_run_inner(Some(cancel), f)
    }

    fn try_run_inner<F>(&self, cancel: Option<&CancelToken>, f: F) -> Result<(), PoolError>
    where
        F: Fn(usize) + Sync,
    {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(PoolError::Cancelled);
        }
        if self.size == 1 {
            // ORDERING: AcqRel — Acquire pairs with the Release in
            // `RegionGuard::drop` so region N+1 observes region N's
            // effects; the Release half publishes the flag itself to any
            // concurrent `try_run` caller.
            if self.in_region.swap(true, Ordering::AcqRel) {
                return Err(PoolError::NestedRun);
            }
            let _guard = RegionGuard(&self.in_region);
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(PoolError::Cancelled);
            }
            ndirect_probe::probe_count!(Regions, 1);
            let _region = ndirect_probe::probe_span!(Region, self.team.span_arg(1));
            {
                let _busy = ndirect_probe::probe_span!(Worker, self.team.span_arg(0));
                f(0);
            }
            return Ok(());
        }
        // ORDERING: AcqRel for the same pairing as the single-thread path
        // above.
        if self.in_region.swap(true, Ordering::AcqRel) {
            return Err(PoolError::NestedRun);
        }
        // Release the reentrancy flag on every exit path (incl. panics).
        let _guard = RegionGuard(&self.in_region);

        // Heal the team before dispatching: a worker the death watch could
        // not respawn must not leave its share of the iteration space to
        // luck.
        self.ensure_workers()?;

        // Last exit before the region becomes real: nothing is published
        // yet, so a cancelled token costs zero worker time.
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(PoolError::Cancelled);
        }
        ndirect_probe::probe_count!(Regions, 1);
        // CAST: pool size is a small thread count, far below u32::MAX.
        let _region = ndirect_probe::probe_span!(Region, self.team.span_arg(self.size as u32));

        // SAFETY: callers must pass a `data` pointer obtained from `&f` for
        // an `F` that outlives the call; the only call sites are the jobs
        // pushed below, which the region's latch confines to `f`'s lifetime.
        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), tid: usize) {
            // SAFETY: `data` was produced from `&f` below and `f` is alive
            // until the latch in `try_run` releases.
            let f = unsafe { &*(data as *const F) };
            f(tid);
        }

        // Re-arm the pool's latch instead of allocating one per region.
        self.region_latch.reset(self.size);
        let latch = &self.region_latch;
        for tid in 1..self.size {
            self.team.board.push(Job {
                data: &f as *const F as *const (),
                call: trampoline::<F>,
                tid,
                latch: Arc::clone(latch),
            });
        }

        // The caller is thread 0. Catch its panic so we still reach the
        // barrier (the workers hold pointers into our stack frame).
        let own = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _busy = ndirect_probe::probe_span!(Worker, self.team.span_arg(0));
            f(0)
        }));
        latch.count_down(own.err());

        let wait = {
            let _barrier = ndirect_probe::probe_phase!(Barrier);
            latch.wait()
        };
        if let Some(payload) = wait {
            std::panic::resume_unwind(payload);
        }
        Ok(())
    }

    /// Convenience: static-partition `0..total` across the team and hand
    /// each thread its `(tid, range)`.
    pub fn run_partitioned<F>(&self, total: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        let parts = self.size;
        self.run(|tid| f(tid, crate::split_static(total, parts, tid)));
    }

    /// Chaos-test fault injection: makes one idle worker thread exit its
    /// loop abnormally, exactly as if something had escaped its
    /// `catch_unwind`. Death detection (and the eager respawn) fires on
    /// the dying thread's way out; this call blocks until the death has
    /// been detected (bounded at 5 s), so on return
    /// [`StaticPool::worker_deaths`] has incremented and the replacement
    /// worker is already installed (or, if spawning it failed, the next
    /// region entry will heal lazily). No effect on a size-1 pool.
    pub fn inject_worker_death(&self) {
        if self.size == 1 {
            return;
        }
        // ORDERING: Acquire — pairs with the death watch's AcqRel
        // fetch_add; the injected kill is detected by the count moving.
        let before = self.team.deaths.load(Ordering::Acquire);
        {
            let mut st = lock_unpoisoned(&self.team.board.queue);
            st.kills += 1;
        }
        self.team.board.available.notify_one();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        // ORDERING: Acquire — same pairing as the `before` load.
        while self.team.deaths.load(Ordering::Acquire) == before
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
    }

    /// Legacy name for [`StaticPool::inject_worker_death`], kept for the
    /// existing hardening tests.
    #[doc(hidden)]
    pub fn __test_kill_one_worker(&self) {
        self.inject_worker_death();
    }
}

impl Drop for StaticPool {
    fn drop(&mut self) {
        // Order matters: the shutdown flag stops death-watch respawns
        // (checked under the handles lock in `respawn`), closing the board
        // stops the worker loops. Join without holding the handles lock —
        // a dying worker's death watch takes that lock, and we may be
        // joining that very thread. A second drain pass collects any
        // replacement installed in the window before the flag was set.
        // ORDERING: Release — pairs with the Acquire load in `respawn`.
        self.team.shutdown.store(true, Ordering::Release);
        self.team.board.close();
        loop {
            let drained: Vec<_> = lock_unpoisoned(&self.team.handles).drain(..).collect();
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_tid_exactly_once() {
        let pool = StaticPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = StaticPool::new(1);
        let hit = std::sync::atomic::AtomicBool::new(false);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            hit.store(true, Ordering::Relaxed);
        });
        assert!(hit.load(Ordering::Relaxed));
    }

    #[test]
    fn zero_size_is_a_typed_error() {
        match StaticPool::try_new(0) {
            Err(PoolError::ZeroSize) => {}
            other => panic!("expected ZeroSize, got {other:?}"),
        }
    }

    #[test]
    fn reusable_across_calls() {
        let pool = StaticPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn closure_can_borrow_stack_data() {
        let pool = StaticPool::new(4);
        let data = [1usize, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        pool.run(|tid| {
            sum.fetch_add(data[tid], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn run_partitioned_covers_range() {
        let pool = StaticPool::new(3);
        let total = 100;
        let seen = (0..total).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.run_partitioned(total, |_tid, range| {
            for i in range {
                seen[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = StaticPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool survives a panicking region.
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caller_panic_still_waits_for_workers() {
        let pool = StaticPool::new(4);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 0 {
                    panic!("caller boom");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // All three workers completed before the panic escaped.
        assert_eq!(finished.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_try_run_returns_typed_error() {
        let pool = StaticPool::new(2);
        let inner = Mutex::new(None);
        pool.run(|tid| {
            if tid == 0 {
                *lock_unpoisoned(&inner) = Some(pool.try_run(|_| {}));
            }
        });
        assert_eq!(
            lock_unpoisoned(&inner).take(),
            Some(Err(PoolError::NestedRun))
        );
        // The flag resets; the pool remains usable.
        let c = AtomicUsize::new(0);
        pool.run(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn nested_run_on_single_thread_pool_is_detected() {
        let pool = StaticPool::new(1);
        let seen = Mutex::new(None);
        pool.run(|_| {
            *lock_unpoisoned(&seen) = Some(pool.try_run(|_| {}));
        });
        assert_eq!(
            lock_unpoisoned(&seen).take(),
            Some(Err(PoolError::NestedRun))
        );
        // And still usable afterwards.
        pool.run(|_| {});
    }

    #[test]
    fn nested_run_panics_instead_of_deadlocking() {
        let pool = StaticPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 0 {
                    pool.run(|_| {});
                }
            });
        }));
        assert!(result.is_err());
        // The guard resets; the pool remains usable.
        let c = AtomicUsize::new(0);
        pool.run(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn in_region_flag_cleared_when_region_closure_panics() {
        // Regression test for the RAII region guard: after a panicking
        // region, try_run must NOT report NestedRun.
        let pool = StaticPool::new(2);
        for _ in 0..3 {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(|_| panic!("every thread panics"));
            }));
            assert!(result.is_err());
            assert!(
                !pool.in_region.load(Ordering::Acquire),
                "in_region must be cleared by the RAII guard"
            );
            // A fresh region starts cleanly.
            pool.try_run(|_| {}).expect("pool reusable after panic");
        }
    }

    /// Waits (bounded) for the eager respawn to bring the worker count
    /// back to full strength.
    fn wait_full_team(pool: &StaticPool) {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.live_workers() < pool.size() - 1 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
    }

    #[test]
    fn worker_death_is_healed_eagerly_not_at_region_entry() {
        let pool = StaticPool::new(3);
        pool.run(|_| {});
        assert_eq!(pool.live_workers(), 2);
        assert_eq!(pool.worker_deaths(), 0);
        pool.inject_worker_death();
        assert_eq!(pool.worker_deaths(), 1, "death must be detected");
        // The replacement is installed by the dying thread itself — no
        // region entry in between.
        wait_full_team(&pool);
        assert_eq!(pool.live_workers(), 2, "eager respawn healed the team");
        // And the team still computes full results.
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn two_consecutive_regions_after_a_kill_run_at_full_width() {
        // Regression test for the one-region degraded window: both regions
        // following a worker death must run on `size` *distinct* threads.
        // The in-region barrier makes the check deterministic: a region
        // running below full width could never release it.
        let pool = StaticPool::new(4);
        pool.run(|_| {});
        pool.inject_worker_death();
        wait_full_team(&pool);
        for round in 0..2 {
            assert_eq!(
                pool.live_workers(),
                3,
                "round {round}: full team before region entry"
            );
            let gate = std::sync::Barrier::new(4);
            let ids = Mutex::new(std::collections::HashSet::new());
            pool.run(|_tid| {
                lock_unpoisoned(&ids).insert(std::thread::current().id());
                gate.wait();
            });
            assert_eq!(
                lock_unpoisoned(&ids).len(),
                4,
                "round {round}: region ran at full width"
            );
        }
    }

    #[test]
    fn repeated_kills_keep_healing() {
        let pool = StaticPool::new(3);
        for round in 1..=3 {
            pool.inject_worker_death();
            assert_eq!(pool.worker_deaths(), round);
            wait_full_team(&pool);
            let counter = AtomicUsize::new(0);
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 3, "round {round}");
        }
    }

    #[test]
    fn cancelled_token_skips_the_region_entirely() {
        let pool = StaticPool::new(3);
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        let result = pool.try_run_cancellable(&token, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(result, Err(PoolError::Cancelled));
        assert_eq!(ran.load(Ordering::Relaxed), 0, "no thread may run f");
        // A fresh token runs normally; the pool state is untouched.
        let fresh = CancelToken::new();
        pool.try_run_cancellable(&fresh, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .expect("uncancelled region runs");
        assert_eq!(ran.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn cancel_on_single_thread_pool() {
        let pool = StaticPool::new(1);
        let token = CancelToken::new();
        token.cancel();
        assert_eq!(
            pool.try_run_cancellable(&token, |_| panic!("must not run")),
            Err(PoolError::Cancelled)
        );
    }

    #[test]
    fn oversubscription_works() {
        // More threads than cores must still complete (the paper's Fig. 9
        // hyper-threading experiment oversubscribes 4x).
        let pool = StaticPool::new(16);
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}

//! A persistent fork-join pool with OpenMP `parallel`-region semantics.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};

/// A fixed team of `PT` threads executing one closure per [`StaticPool::run`]
/// call — thread 0 is the caller, threads `1..PT` are persistent workers.
///
/// Matches `#pragma omp parallel num_threads(PT)`:
///
/// * every thread executes the same closure, receiving its thread id;
/// * `run` returns only when all threads have finished (implicit barrier);
/// * a panic on any thread is propagated to the caller after the barrier.
///
/// The closure borrows from the caller's stack (no `'static` bound); the
/// barrier at the end of `run` is what makes that sound.
pub struct StaticPool {
    size: usize,
    sender: Option<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Guards against nested `run` on the same pool, which would deadlock
    /// (workers are busy executing the outer region's job).
    in_region: std::sync::atomic::AtomicBool,
}

/// A lifetime-erased `&(dyn Fn(usize) + Sync)` plus completion accounting.
struct Job {
    /// Pointer to the caller's closure, valid until `latch` releases `run`.
    data: *const (),
    /// Monomorphized trampoline that reconstitutes the closure type.
    call: unsafe fn(*const (), usize),
    tid: usize,
    latch: Arc<Latch>,
}

// SAFETY: `data` points at a `Sync` closure (enforced by `run`'s bounds),
// and `run` keeps the closure alive until every job has signalled `latch`.
unsafe impl Send for Job {}

/// Countdown latch that also collects the first panic payload.
struct Latch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            cv: Condvar::new(),
        }
    }

    fn count_down(&self, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock();
        if st.panic.is_none() {
            st.panic = panic;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        let mut st = self.state.lock();
        while st.remaining != 0 {
            self.cv.wait(&mut st);
        }
        st.panic.take()
    }
}

impl StaticPool {
    /// Creates a pool of `size ≥ 1` threads (spawning `size − 1` workers).
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "pool size must be >= 1");
        if size == 1 {
            return Self {
                size,
                sender: None,
                handles: Vec::new(),
                in_region: std::sync::atomic::AtomicBool::new(false),
            };
        }
        let (sender, receiver) = unbounded::<Job>();
        let handles = (1..size)
            .map(|i| {
                let rx = receiver.clone();
                std::thread::Builder::new()
                    .name(format!("ndirect-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                // SAFETY: `job.data`/`job.call` were erased
                                // from a live `&F` in `run`, which blocks on
                                // `latch` until we count down below.
                                unsafe { (job.call)(job.data, job.tid) }
                            }));
                            job.latch.count_down(result.err());
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            size,
            sender: Some(sender),
            handles,
            in_region: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// A pool sized to the host's hardware parallelism.
    pub fn with_hardware_threads() -> Self {
        Self::new(crate::hardware_threads())
    }

    /// Number of threads in the team (including the caller).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Executes `f(tid)` on every thread of the team and waits for all of
    /// them (the caller runs `tid = 0`). Panics from any thread propagate
    /// after the barrier.
    ///
    /// `run` is **not reentrant**: calling it again from inside a region on
    /// the same pool would deadlock (the workers are occupied by the outer
    /// region), so it panics immediately instead. Use a separate pool for
    /// nested parallelism.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.size == 1 {
            f(0);
            return;
        }
        use std::sync::atomic::Ordering;
        assert!(
            !self.in_region.swap(true, Ordering::Acquire),
            "StaticPool::run is not reentrant: nested run() on the same pool would deadlock"
        );
        // Release the reentrancy guard even if the region panics.
        struct Guard<'a>(&'a std::sync::atomic::AtomicBool);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.store(false, std::sync::atomic::Ordering::Release);
            }
        }
        let _guard = Guard(&self.in_region);

        unsafe fn trampoline<F: Fn(usize) + Sync>(data: *const (), tid: usize) {
            // SAFETY: `data` was produced from `&f` below and `f` is alive
            // until the latch in `run` releases.
            let f = unsafe { &*(data as *const F) };
            f(tid);
        }

        let latch = Arc::new(Latch::new(self.size));
        let sender = self.sender.as_ref().expect("pool has workers");
        for tid in 1..self.size {
            sender
                .send(Job {
                    data: &f as *const F as *const (),
                    call: trampoline::<F>,
                    tid,
                    latch: Arc::clone(&latch),
                })
                .expect("worker channel closed");
        }

        // The caller is thread 0. Catch its panic so we still reach the
        // barrier (the workers hold pointers into our stack frame).
        let own = std::panic::catch_unwind(AssertUnwindSafe(|| f(0)));
        latch.count_down(own.err());

        if let Some(payload) = latch.wait() {
            std::panic::resume_unwind(payload);
        }
    }

    /// Convenience: static-partition `0..total` across the team and hand
    /// each thread its `(tid, range)`.
    pub fn run_partitioned<F>(&self, total: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        let parts = self.size;
        self.run(|tid| f(tid, crate::split_static(total, parts, tid)));
    }
}

impl Drop for StaticPool {
    fn drop(&mut self) {
        // Closing the channel stops the worker loops.
        self.sender.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_tid_exactly_once() {
        let pool = StaticPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            hits[tid].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = StaticPool::new(1);
        let hit = std::sync::atomic::AtomicBool::new(false);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            hit.store(true, Ordering::Relaxed);
        });
        assert!(hit.load(Ordering::Relaxed));
    }

    #[test]
    fn reusable_across_calls() {
        let pool = StaticPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn closure_can_borrow_stack_data() {
        let pool = StaticPool::new(4);
        let data = [1usize, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        pool.run(|tid| {
            sum.fetch_add(data[tid], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn run_partitioned_covers_range() {
        let pool = StaticPool::new(3);
        let total = 100;
        let seen = (0..total).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        pool.run_partitioned(total, |_tid, range| {
            for i in range {
                seen[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(seen.iter().all(|s| s.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = StaticPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("worker boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool survives a panicking region.
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn caller_panic_still_waits_for_workers() {
        let pool = StaticPool::new(4);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 0 {
                    panic!("caller boom");
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // All three workers completed before the panic escaped.
        assert_eq!(finished.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_run_panics_instead_of_deadlocking() {
        let pool = StaticPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 0 {
                    pool.run(|_| {});
                }
            });
        }));
        assert!(result.is_err());
        // The guard resets; the pool remains usable.
        let c = AtomicUsize::new(0);
        pool.run(|_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn oversubscription_works() {
        // More threads than cores must still complete (the paper's Fig. 9
        // hyper-threading experiment oversubscribes 4x).
        let pool = StaticPool::new(16);
        let counter = AtomicUsize::new(0);
        pool.run(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}

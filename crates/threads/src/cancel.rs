//! Cooperative cancellation for region entry.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the party
//! that may abort a piece of work (e.g. a deadline sweeper in the serving
//! layer) and the party about to execute it. Cancellation is *advisory
//! before dispatch, never preemptive*: [`crate::StaticPool::try_run_cancellable`]
//! consults the token only while the region can still be skipped outright;
//! once jobs are published the region always runs to its barrier.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Cloning is O(1) (an `Arc` bump); all clones
/// observe the same state. Once cancelled, a token stays cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the token cancelled. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        // ORDERING: Release — pairs with the Acquire in `is_cancelled` so
        // everything the canceller wrote before cancelling is visible to
        // a worker that observes the flag.
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release store in `cancel`.
        self.cancelled.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uncancelled() {
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        a.cancel();
        assert!(a.is_cancelled());
        assert!(b.is_cancelled(), "clones share the flag");
        a.cancel();
        assert!(a.is_cancelled(), "idempotent");
    }

    #[test]
    fn cancel_crosses_threads() {
        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancelling thread");
        assert!(token.is_cancelled());
    }
}

//! [`SharedSlice`]: sound disjoint writes into one buffer from many
//! threads.
//!
//! Every parallel kernel in this workspace partitions an output tensor so
//! that no element has two writers. Expressing that with per-thread
//! `slice::from_raw_parts_mut` over the *whole* buffer violates that
//! function's contract (the memory is accessed through other threads'
//! overlapping slices during the region), even though the writes never
//! race. `SharedSlice` provides the sound formulation: the buffer is held
//! only as a raw pointer, threads write through it element-wise (or carve
//! out provably disjoint contiguous subslices), and the pool's implicit
//! barrier sequences all writes before the caller's `&mut` borrow ends.

use std::marker::PhantomData;
use std::ptr::NonNull;

/// A length-tagged raw view of a `&mut [T]`, shareable across a fork-join
/// region for *disjoint* writes.
///
/// The element accessors are `unsafe`: the caller asserts that no other
/// thread concurrently accesses the same index (each call site documents
/// its partitioning argument). Bounds are `debug_assert`ed — callers are
/// inner kernels whose offsets are established by the surrounding driver.
pub struct SharedSlice<'a, T> {
    // NonNull (derived from the borrow in `new`) keeps the view
    // provenance-clean: every access goes through the one pointer that
    // carries the original `&mut [T]`'s provenance.
    ptr: NonNull<T>,
    len: usize,
    _borrow: PhantomData<&'a mut [T]>,
}

// SAFETY: the accessors require callers to guarantee disjointness, which is
// exactly the data-race-freedom condition; `T: Send` suffices because only
// writes/reads of owned disjoint elements occur.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
// SAFETY: as for `Send` — a `&SharedSlice` only permits accesses whose
// disjointness the (unsafe) caller asserts, so shared references between
// threads cannot introduce a data race beyond what callers already promise.
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for the duration of a fork-join region. The
    /// borrow keeps the underlying buffer alive and exclusively reserved
    /// for this view.
    pub fn new(slice: &'a mut [T]) -> Self {
        let len = slice.len();
        Self {
            // `NonNull::from` on the slice reference preserves the borrow's
            // provenance over the whole `len`-element range (unlike a
            // pointer re-derived from a temporary first-element borrow).
            ptr: NonNull::from(slice).cast::<T>(),
            len,
            _borrow: PhantomData,
        }
    }

    /// Number of elements.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `v` to index `i`.
    ///
    /// # Safety
    /// `i < len`, and no other thread accesses index `i` concurrently.
    #[inline(always)]
    pub unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        // SAFETY: per the function contract.
        unsafe { *self.ptr.as_ptr().add(i) = v };
    }

    /// Reads the value at index `i`.
    ///
    /// # Safety
    /// `i < len`, and no other thread writes index `i` concurrently.
    #[inline(always)]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        // SAFETY: per the function contract.
        unsafe { *self.ptr.as_ptr().add(i) }
    }

    /// A `&mut` view of the contiguous range `start..start + n`.
    ///
    /// # Safety
    /// The range is in bounds and no other thread accesses any index in it
    /// for the lifetime of the returned slice.
    #[inline(always)]
    #[allow(clippy::mut_from_ref)] // the whole point: caller-proven disjointness
    pub unsafe fn range_mut(&self, start: usize, n: usize) -> &mut [T] {
        debug_assert!(start.checked_add(n).is_some_and(|e| e <= self.len));
        // SAFETY: in bounds per the contract; exclusivity of the range is
        // the caller's partitioning argument, so no other pointer accesses
        // this memory during the borrow.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr().add(start), n) }
    }
}

impl<T: Copy + std::ops::AddAssign> SharedSlice<'_, T> {
    /// `self[i] += v` (read-modify-write of one element).
    ///
    /// # Safety
    /// `i < len`, and no other thread accesses index `i` concurrently.
    #[inline(always)]
    pub unsafe fn add_assign(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        // SAFETY: per the function contract.
        unsafe { *self.ptr.as_ptr().add(i) += v };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{split_static, StaticPool};

    #[test]
    fn disjoint_parallel_writes_land() {
        let mut data = vec![0u64; 1000];
        {
            let shared = SharedSlice::new(&mut data);
            let pool = StaticPool::new(4);
            pool.run(|tid| {
                for i in split_static(shared.len(), 4, tid) {
                    // SAFETY: static split ⇒ each index has one owner.
                    unsafe { shared.write(i, (tid * 10_000 + i) as u64) };
                }
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize % 10_000, i % 10_000);
        }
    }

    #[test]
    fn interleaved_ownership_is_fine() {
        // Even/odd interleave: disjoint but non-contiguous.
        let mut data = vec![0i32; 64];
        {
            let shared = SharedSlice::new(&mut data);
            let pool = StaticPool::new(2);
            pool.run(|tid| {
                let mut i = tid;
                while i < shared.len() {
                    // SAFETY: parity partitions the index space.
                    unsafe { shared.add_assign(i, 1 + tid as i32) };
                    i += 2;
                }
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (i % 2) as i32);
        }
    }

    #[test]
    fn range_mut_hands_out_disjoint_subslices() {
        let mut data = vec![0.0f32; 40];
        {
            let shared = SharedSlice::new(&mut data);
            let pool = StaticPool::new(4);
            pool.run(|tid| {
                // SAFETY: 10-element blocks per tid are disjoint.
                let chunk = unsafe { shared.range_mut(tid * 10, 10) };
                chunk.fill(tid as f32);
            });
        }
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, (i / 10) as f32);
        }
    }

    #[test]
    fn read_back_after_write() {
        let mut data = vec![7i64; 3];
        let shared = SharedSlice::new(&mut data);
        // SAFETY: single-threaded use.
        unsafe {
            shared.write(1, 9);
            assert_eq!(shared.read(1), 9);
            assert_eq!(shared.read(0), 7);
        }
    }
}

//! Typed thread-pool faults.

/// Why a pool operation could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// [`crate::StaticPool::try_new`] was asked for a pool of zero threads.
    ZeroSize,
    /// [`crate::StaticPool::try_run`] was called from inside a region on the
    /// same pool. The workers are occupied by the outer region, so running
    /// the nested region would deadlock; use a separate pool for nested
    /// parallelism.
    NestedRun,
    /// Spawning (or respawning) a worker thread failed — typically thread
    /// exhaustion under heavy load. The pool is still usable at reduced
    /// parallelism once threads free up; callers may also retry with a
    /// smaller pool.
    WorkerSpawn {
        /// Thread id of the worker that could not be spawned.
        worker: usize,
        /// The OS error category.
        kind: std::io::ErrorKind,
    },
    /// The [`crate::CancelToken`] passed to
    /// [`crate::StaticPool::try_run_cancellable`] was cancelled before the
    /// region was published to the workers; no thread executed the region
    /// closure. The pool itself is healthy — this is a caller-side abort,
    /// not a fault.
    Cancelled,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ZeroSize => write!(f, "pool size must be >= 1"),
            PoolError::NestedRun => write!(
                f,
                "StaticPool::run is not reentrant: nested run() on the same pool would deadlock"
            ),
            PoolError::WorkerSpawn { worker, kind } => {
                write!(f, "failed to spawn pool worker {worker}: {kind}")
            }
            PoolError::Cancelled => {
                write!(f, "region cancelled before dispatch; no thread ran the closure")
            }
        }
    }
}

impl std::error::Error for PoolError {}

//! `schedule(static)` iteration-space splitting.

use std::ops::Range;

/// The contiguous subrange of `0..total` owned by thread `tid` out of
/// `parts`, under OpenMP-style static scheduling: the first `total % parts`
/// threads get one extra iteration, so sizes differ by at most one and the
/// union is exactly `0..total`.
///
/// `tid >= parts` is a bug in the caller and panics.
pub fn split_static(total: usize, parts: usize, tid: usize) -> Range<usize> {
    assert!(parts >= 1, "parts must be >= 1");
    assert!(tid < parts, "tid {tid} out of range for {parts} parts");
    let base = total / parts;
    let extra = total % parts;
    let start = tid * base + tid.min(extra);
    let len = base + usize::from(tid < extra);
    start..start + len
}

/// All `parts` static chunks of `0..total` in order (empty chunks included
/// when `total < parts`).
pub fn chunk_static(total: usize, parts: usize) -> impl Iterator<Item = Range<usize>> {
    (0..parts).map(move |tid| split_static(total, parts, tid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_support::Rng64;

    #[test]
    fn even_split() {
        assert_eq!(split_static(8, 4, 0), 0..2);
        assert_eq!(split_static(8, 4, 3), 6..8);
    }

    #[test]
    fn uneven_split_front_loads_remainder() {
        // 10 over 4 -> 3,3,2,2
        assert_eq!(split_static(10, 4, 0), 0..3);
        assert_eq!(split_static(10, 4, 1), 3..6);
        assert_eq!(split_static(10, 4, 2), 6..8);
        assert_eq!(split_static(10, 4, 3), 8..10);
    }

    #[test]
    fn more_parts_than_work_gives_empty_tails() {
        assert_eq!(split_static(2, 4, 0), 0..1);
        assert_eq!(split_static(2, 4, 1), 1..2);
        assert_eq!(split_static(2, 4, 2), 2..2);
        assert_eq!(split_static(2, 4, 3), 2..2);
    }

    #[test]
    fn single_part_takes_all() {
        assert_eq!(split_static(17, 1, 0), 0..17);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_tid_out_of_range() {
        split_static(10, 2, 2);
    }

    #[test]
    fn chunks_partition_exactly() {
        // Hand-rolled property test: random (total, parts) pairs plus the
        // boundary cases a fuzzer would shrink to.
        let mut rng = Rng64::seed_from_u64(0x5117);
        let mut cases: Vec<(usize, usize)> =
            vec![(0, 1), (0, 63), (1, 1), (1, 63), (4999, 1), (4999, 63)];
        cases.extend((0..256).map(|_| {
            (rng.gen_range_usize(0, 5000), rng.gen_range_usize(1, 64))
        }));
        for (total, parts) in cases {
            let mut next = 0;
            let mut sizes = vec![];
            for r in chunk_static(total, parts) {
                assert_eq!(r.start, next, "total={total} parts={parts}");
                sizes.push(r.len());
                next = r.end;
            }
            assert_eq!(next, total, "total={total} parts={parts}");
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            assert!(max - min <= 1, "static split must be balanced");
        }
    }

    #[test]
    fn exhaustive_balance_no_ragged_edge() {
        // Every (total, parts) combination in a range that covers all the
        // modular-arithmetic corners (total % parts == 0, 1, parts − 1;
        // total < parts; total == parts ± 1): the chunks partition
        // 0..total exactly and no thread carries more than one extra
        // iteration — the load-imbalance bound static scheduling promises.
        for total in 0..=257usize {
            for parts in 1..=33usize {
                let mut next = 0;
                let mut min = usize::MAX;
                let mut max = 0;
                for r in chunk_static(total, parts) {
                    assert_eq!(r.start, next, "gap/overlap at total={total} parts={parts}");
                    min = min.min(r.len());
                    max = max.max(r.len());
                    next = r.end;
                }
                assert_eq!(next, total, "union must be 0..total");
                assert!(
                    max - min <= 1,
                    "ragged edge: total={total} parts={parts} min={min} max={max}"
                );
            }
        }
    }
}

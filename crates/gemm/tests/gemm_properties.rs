//! Property tests for the Goto GEMM against the naive oracle, including
//! strided views and extreme block configurations.

use ndirect_gemm::{gemm_strided, naive, par_gemm, BlockSizes};
use ndirect_tensor::fill;
use ndirect_threads::StaticPool;
use proptest::prelude::*;

fn close_all(got: &[f32], want: &[f32]) -> Result<(), TestCaseError> {
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        prop_assert!(
            (x - y).abs() <= 2e-4 * y.abs().max(1.0),
            "idx {i}: {x} vs {y}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn strided_gemm_matches_naive(
        m in 1usize..30, n in 1usize..30, k in 1usize..30,
        extra_lda in 0usize..4, extra_ldb in 0usize..4, extra_ldc in 0usize..4,
        seed in 0u64..1000,
    ) {
        let (lda, ldb, ldc) = (k + extra_lda, n + extra_ldb, n + extra_ldc);
        let mut a = vec![0.0f32; m * lda];
        let mut b = vec![0.0f32; k * ldb];
        fill::fill_random(&mut a, seed);
        fill::fill_random(&mut b, seed ^ 0xff);
        let mut c = vec![0.0f32; m * ldc];
        let mut c_ref = c.clone();

        // Dense copies for the oracle.
        let a_d: Vec<f32> = (0..m).flat_map(|i| a[i * lda..i * lda + k].to_vec()).collect();
        let b_d: Vec<f32> = (0..k).flat_map(|i| b[i * ldb..i * ldb + n].to_vec()).collect();
        let mut cd = vec![0.0f32; m * n];
        naive::matmul(m, n, k, &a_d, &b_d, &mut cd);
        for i in 0..m {
            c_ref[i * ldc..i * ldc + n].copy_from_slice(&cd[i * n..(i + 1) * n]);
        }

        gemm_strided(m, n, k, &a, lda, &b, ldb, &mut c, ldc, BlockSizes::default());
        close_all(&c, &c_ref)?;
    }

    #[test]
    fn tiny_blocks_still_correct(
        m in 1usize..25, n in 1usize..25, k in 1usize..25, seed in 0u64..200,
    ) {
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill::fill_random(&mut a, seed);
        fill::fill_random(&mut b, seed ^ 1);
        let mut want = vec![0.0f32; m * n];
        naive::matmul(m, n, k, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        // Pathologically small blocks force every loop boundary.
        let blocks = BlockSizes { mc: 6, kc: 4, nc: 8 };
        gemm_strided(m, n, k, &a, k, &b, n, &mut got, n, blocks);
        close_all(&got, &want)?;
    }

    #[test]
    fn parallel_gemm_matches_for_any_team(
        m in 1usize..20, n in 1usize..50, k in 1usize..20,
        threads in 1usize..6, seed in 0u64..200,
    ) {
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill::fill_random(&mut a, seed);
        fill::fill_random(&mut b, seed ^ 2);
        let mut want = vec![0.0f32; m * n];
        naive::matmul(m, n, k, &a, &b, &mut want);
        let pool = StaticPool::new(threads);
        let mut got = vec![0.0f32; m * n];
        par_gemm(&pool, m, n, k, &a, &b, &mut got, BlockSizes::default());
        close_all(&got, &want)?;
    }
}

//! Property tests for the Goto GEMM against the naive oracle, including
//! strided views and extreme block configurations. Cases are generated
//! with the workspace's seeded [`Rng64`], so every failure message carries
//! the case number and is exactly reproducible.

use ndirect_gemm::{gemm_strided, naive, par_gemm, BlockSizes};
use ndirect_support::Rng64;
use ndirect_tensor::fill;
use ndirect_threads::StaticPool;

fn close_all(case: usize, got: &[f32], want: &[f32]) {
    for (i, (x, y)) in got.iter().zip(want).enumerate() {
        assert!(
            (x - y).abs() <= 2e-4 * y.abs().max(1.0),
            "case {case} idx {i}: {x} vs {y}"
        );
    }
}

#[test]
fn strided_gemm_matches_naive() {
    let mut rng = Rng64::seed_from_u64(0x6e44);
    for case in 0..64 {
        let m = rng.gen_range_usize(1, 30);
        let n = rng.gen_range_usize(1, 30);
        let k = rng.gen_range_usize(1, 30);
        let (lda, ldb, ldc) = (
            k + rng.gen_range_usize(0, 4),
            n + rng.gen_range_usize(0, 4),
            n + rng.gen_range_usize(0, 4),
        );
        let seed = rng.next_u64();
        let mut a = vec![0.0f32; m * lda];
        let mut b = vec![0.0f32; k * ldb];
        fill::fill_random(&mut a, seed);
        fill::fill_random(&mut b, seed ^ 0xff);
        let mut c = vec![0.0f32; m * ldc];
        let mut c_ref = c.clone();

        // Dense copies for the oracle.
        let a_d: Vec<f32> = (0..m).flat_map(|i| a[i * lda..i * lda + k].to_vec()).collect();
        let b_d: Vec<f32> = (0..k).flat_map(|i| b[i * ldb..i * ldb + n].to_vec()).collect();
        let mut cd = vec![0.0f32; m * n];
        naive::matmul(m, n, k, &a_d, &b_d, &mut cd);
        for i in 0..m {
            c_ref[i * ldc..i * ldc + n].copy_from_slice(&cd[i * n..(i + 1) * n]);
        }

        gemm_strided(m, n, k, &a, lda, &b, ldb, &mut c, ldc, BlockSizes::default());
        close_all(case, &c, &c_ref);
    }
}

#[test]
fn tiny_blocks_still_correct() {
    let mut rng = Rng64::seed_from_u64(0x6e45);
    for case in 0..64 {
        let m = rng.gen_range_usize(1, 25);
        let n = rng.gen_range_usize(1, 25);
        let k = rng.gen_range_usize(1, 25);
        let seed = rng.next_u64();
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill::fill_random(&mut a, seed);
        fill::fill_random(&mut b, seed ^ 1);
        let mut want = vec![0.0f32; m * n];
        naive::matmul(m, n, k, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        // Pathologically small blocks force every loop boundary.
        let blocks = BlockSizes { mc: 6, kc: 4, nc: 8 };
        gemm_strided(m, n, k, &a, k, &b, n, &mut got, n, blocks);
        close_all(case, &got, &want);
    }
}

#[test]
fn parallel_gemm_matches_for_any_team() {
    let mut rng = Rng64::seed_from_u64(0x6e46);
    for case in 0..48 {
        let m = rng.gen_range_usize(1, 20);
        let n = rng.gen_range_usize(1, 50);
        let k = rng.gen_range_usize(1, 20);
        let threads = rng.gen_range_usize(1, 6);
        let seed = rng.next_u64();
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill::fill_random(&mut a, seed);
        fill::fill_random(&mut b, seed ^ 2);
        let mut want = vec![0.0f32; m * n];
        naive::matmul(m, n, k, &a, &b, &mut want);
        let pool = StaticPool::new(threads);
        let mut got = vec![0.0f32; m * n];
        par_gemm(&pool, m, n, k, &a, &b, &mut got, BlockSizes::default());
        close_all(case, &got, &want);
    }
}

//! The blocked (cache-tiled) GEMM driver.

use ndirect_tensor::AlignedBuf;

use crate::kernel::{microkernel, microkernel_edge};
use crate::error::{check_ld, check_len, GemmError};
use crate::pack::{pack_a, pack_b};
use crate::{MR, NR};

/// Cache block sizes for the Goto loop nest.
///
/// Defaults follow the usual heuristics for a 32 KB L1 / 512 KB L2 machine:
/// `kc` sized so an `MR×kc` A-panel plus an `NR×kc` B-panel stay in L1,
/// `mc×kc` of packed A in L2, `kc×nc` of packed B in L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Rows of packed `A` kept L2-resident.
    pub mc: usize,
    /// Reduction depth per packed panel (L1-resident).
    pub kc: usize,
    /// Columns of packed `B` kept L3-resident.
    pub nc: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        BlockSizes {
            mc: 264,
            kc: 256,
            nc: 2048,
        }
    }
}

impl BlockSizes {
    /// Derives block sizes from cache capacities in bytes (used by the
    /// platform-aware callers; the constants mirror Goto's occupancy rules).
    pub fn for_caches(l1d: usize, l2: usize, l3: Option<usize>) -> Self {
        let f = std::mem::size_of::<f32>();
        // Half of L1 for the two hot panels (`MR+NR` floats per k step).
        let kc = (l1d / (2 * f * (MR + NR))).clamp(64, 1024);
        // Half of L2 for the packed A block, rounded to MR.
        let mc = ((l2 / (2 * f * kc)).max(MR) / MR) * MR;
        // Half of L3 (or 4 MB) for the packed B block, rounded to NR.
        let l3 = l3.unwrap_or(8 << 20);
        let nc = ((l3 / (2 * f * kc)).max(NR) / NR) * NR;
        BlockSizes { mc, kc, nc }
    }
}

/// `C += A·B` for contiguous row-major operands
/// (`A: m×k`, `B: k×n`, `C: m×n`).
pub fn gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    try_gemm(m, n, k, a, b, c).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`gemm`].
pub fn try_gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) -> Result<(), GemmError> {
    check_len("A", m * k, a.len())?;
    check_len("B", k * n, b.len())?;
    check_len("C", m * n, c.len())?;
    try_gemm_strided(m, n, k, a, k, b, n, c, n, BlockSizes::default())
}

/// `C += A·B` with explicit leading dimensions and block sizes.
///
/// `a` is `m×k` with row stride `lda`, `b` is `k×n` with row stride `ldb`,
/// `c` is `m×n` with row stride `ldc`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    blocks: BlockSizes,
) {
    try_gemm_strided(m, n, k, a, lda, b, ldb, c, ldc, blocks).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`gemm_strided`].
#[allow(clippy::too_many_arguments)]
pub fn try_gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: &mut [f32],
    ldc: usize,
    blocks: BlockSizes,
) -> Result<(), GemmError> {
    if m == 0 || n == 0 || k == 0 {
        return Ok(());
    }
    check_ld("lda", lda, k)?;
    check_ld("ldb", ldb, n)?;
    check_ld("ldc", ldc, n)?;
    check_len("A", (m - 1) * lda + k, a.len())?;
    check_len("B", (k - 1) * ldb + n, b.len())?;
    check_len("C", (m - 1) * ldc + n, c.len())?;

    let BlockSizes { mc, kc, nc } = blocks;
    let mut packed_a = AlignedBuf::zeroed(mc.div_ceil(MR) * MR * kc);
    let mut packed_b = AlignedBuf::zeroed(nc.div_ceil(NR) * NR * kc);

    // Loop 5 (jc): N blocks sized for L3-resident packed B.
    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc);
        // Loop 4 (pc): K blocks; pack B once per (jc, pc).
        for pc in (0..k).step_by(kc) {
            let kcb = kc.min(k - pc);
            pack_b::<NR>(&b[pc * ldb + jc..], ldb, kcb, ncb, &mut packed_b);
            // Loop 3 (ic): M blocks; pack A once per (ic, pc).
            for ic in (0..m).step_by(mc) {
                let mcb = mc.min(m - ic);
                pack_a::<MR>(&a[ic * lda + pc..], lda, mcb, kcb, &mut packed_a);
                inner_kernel(
                    mcb,
                    ncb,
                    kcb,
                    &packed_a,
                    &packed_b,
                    &mut c[ic * ldc + jc..],
                    ldc,
                );
            }
        }
    }
    Ok(())
}

/// Macro-kernel: sweeps the packed block with the register-tiled
/// micro-kernel (loops 2 and 1 of the Goto nest).
fn inner_kernel(
    mcb: usize,
    ncb: usize,
    kcb: usize,
    packed_a: &[f32],
    packed_b: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    const NRV: usize = NR / 4;
    for jr in (0..ncb).step_by(NR) {
        let cols = NR.min(ncb - jr);
        let b_panel = &packed_b[(jr / NR) * NR * kcb..];
        for ir in (0..mcb).step_by(MR) {
            let rows = MR.min(mcb - ir);
            let a_panel = &packed_a[(ir / MR) * MR * kcb..];
            let c_tile = &mut c[ir * ldc + jr..];
            if rows == MR && cols == NR {
                microkernel::<MR, NRV>(kcb, a_panel, b_panel, c_tile, ldc);
            } else {
                microkernel_edge::<MR, NRV>(kcb, a_panel, b_panel, c_tile, ldc, rows, cols);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn check(m: usize, n: usize, k: usize, blocks: BlockSizes) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.5).collect();
        let mut c: Vec<f32> = (0..m * n).map(|i| i as f32 * 0.01).collect();
        let mut expect = c.clone();
        naive::matmul(m, n, k, &a, &b, &mut expect);
        gemm_strided(m, n, k, &a, k, &b, n, &mut c, n, blocks);
        for (i, (x, y)) in c.iter().zip(&expect).enumerate() {
            assert!(
                (x - y).abs() <= 1e-3 * y.abs().max(1.0),
                "({m},{n},{k}) idx {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn small_shapes_match_naive() {
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (6, 8, 16), (7, 9, 5), (13, 17, 19)] {
            check(m, n, k, BlockSizes::default());
        }
    }

    #[test]
    fn shapes_larger_than_blocks() {
        // Force multiple (jc, pc, ic) iterations with tiny blocks.
        let blocks = BlockSizes { mc: 12, kc: 8, nc: 16 };
        for (m, n, k) in [(25, 33, 17), (30, 16, 8), (12, 16, 9), (40, 40, 40)] {
            check(m, n, k, blocks);
        }
    }

    #[test]
    fn gemm_contiguous_entry_point() {
        let m = 20;
        let n = 24;
        let k = 12;
        let a = vec![0.5; m * k];
        let b = vec![2.0; k * n];
        let mut c = vec![1.0; m * n];
        gemm(m, n, k, &a, &b, &mut c);
        // 1 + 0.5*2*12 = 13 everywhere.
        assert!(c.iter().all(|&x| (x - 13.0).abs() < 1e-5));
    }

    #[test]
    fn strided_c_submatrix_untouched_outside() {
        // C is a 2x2 window in a 2x4 buffer; other columns must not change.
        let a = [1.0, 0.0, 0.0, 1.0]; // 2x2 identity
        let b = [3.0, 4.0, 5.0, 6.0]; // 2x2
        let mut c = vec![9.0; 8];
        gemm_strided(2, 2, 2, &a, 2, &b, 2, &mut c, 4, BlockSizes::default());
        assert_eq!(&c[0..2], &[12.0, 13.0]);
        assert_eq!(&c[4..6], &[14.0, 15.0]);
        assert_eq!(&c[2..4], &[9.0, 9.0]);
        assert_eq!(&c[6..8], &[9.0, 9.0]);
    }

    #[test]
    fn zero_sized_dims_are_noops() {
        let mut c = vec![1.0; 4];
        gemm_strided(0, 2, 2, &[], 2, &[0.0; 4], 2, &mut c, 2, BlockSizes::default());
        gemm_strided(2, 2, 0, &[], 0, &[], 2, &mut c, 2, BlockSizes::default());
        assert_eq!(c, vec![1.0; 4]);
    }

    #[test]
    fn block_sizes_from_caches_are_reasonable() {
        let b = BlockSizes::for_caches(32 * 1024, 512 * 1024, Some(32 << 20));
        assert!(b.kc >= 64 && b.kc <= 1024);
        assert_eq!(b.mc % MR, 0);
        assert_eq!(b.nc % NR, 0);
        assert!(b.mc >= MR && b.nc >= NR);
    }
}

//! Goto-algorithm FP32 GEMM.
//!
//! The im2col baseline in the paper calls OpenBLAS; this crate is the
//! workspace's from-scratch replacement, implementing the classical Goto &
//! van de Geijn blocked algorithm the paper's Algorithm 2 is modelled on:
//!
//! * `B` is packed into `NR`-column panels sized to stay in L3/L2 (`KC×NC`);
//! * `A` is packed into `MR`-row panels sized for L2 (`MC×KC`);
//! * an `MR×NR` register-tiled micro-kernel ([`kernel`]) runs over the
//!   packed panels with broadcast-FMA updates;
//! * the parallel driver splits the `N` dimension statically across a
//!   [`ndirect_threads::StaticPool`], each thread running the full blocked
//!   algorithm on its column stripe (deterministic, no shared packing).
//!
//! All matrices are row-major `f32` slices. The only public entry points are
//! [`gemm`] / [`gemm_strided`] / [`par_gemm`] plus [`naive::matmul`] as the
//! testing oracle.

#![warn(missing_docs)]

pub mod blocked;
pub mod error;
pub mod kernel;
pub mod naive;
pub mod pack;
pub mod parallel;

pub use blocked::{gemm, gemm_strided, try_gemm, try_gemm_strided, BlockSizes};
pub use error::GemmError;
pub use parallel::{par_gemm, try_par_gemm};

/// Rows per register tile (`MR`). Sized so the accumulator file
/// (`MR × NR/4` vectors) plus operand registers fits the 16 XMM registers of
/// baseline x86_64 as well as NEON's 32.
pub const MR: usize = 6;

/// Columns per register tile (`NR`); a multiple of the 4-lane vector width.
pub const NR: usize = 8;

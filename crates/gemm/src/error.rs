//! Typed errors for the GEMM entry points.

/// Why a GEMM call rejected its operands. The panicking entry points
/// format these into their panic message, so both API flavours agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmError {
    /// An operand slice is smaller than the problem dimensions require.
    OperandSize {
        /// `"A"`, `"B"`, or `"C"`.
        name: &'static str,
        /// Minimum length the dimensions imply.
        needed: usize,
        /// Actual slice length.
        got: usize,
    },
    /// A leading dimension is smaller than the row extent it strides over.
    LeadingDim {
        /// `"lda"`, `"ldb"`, or `"ldc"`.
        name: &'static str,
        /// The offending leading dimension.
        ld: usize,
        /// Minimum legal value.
        min: usize,
    },
}

impl std::fmt::Display for GemmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GemmError::OperandSize { name, needed, got } => {
                write!(f, "{name} size: operand needs at least {needed} elements, got {got}")
            }
            GemmError::LeadingDim { name, ld, min } => {
                write!(f, "leading dims too small: {name} = {ld} must be >= {min}")
            }
        }
    }
}

impl std::error::Error for GemmError {}

pub(crate) fn check_len(name: &'static str, needed: usize, got: usize) -> Result<(), GemmError> {
    if got >= needed {
        Ok(())
    } else {
        Err(GemmError::OperandSize { name, needed, got })
    }
}

pub(crate) fn check_ld(name: &'static str, ld: usize, min: usize) -> Result<(), GemmError> {
    if ld >= min {
        Ok(())
    } else {
        Err(GemmError::LeadingDim { name, ld, min })
    }
}

//! Triple-loop reference matrix multiplication — the GEMM oracle.

/// `C += A·B` with row-major contiguous operands:
/// `A` is `m×k`, `B` is `k×n`, `C` is `m×n`.
pub fn matmul(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        matmul(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn accumulates_into_c() {
        let a = [1.0];
        let b = [2.0];
        let mut c = [10.0];
        matmul(1, 1, 1, &a, &b, &mut c);
        assert_eq!(c, [12.0]);
    }

    #[test]
    fn rectangular_shapes() {
        // 1x3 times 3x2.
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut c = [0.0; 2];
        matmul(1, 2, 3, &a, &b, &mut c);
        assert_eq!(c, [14.0, 32.0]);
    }
}

//! The `MR×NR` register-tiled GEMM micro-kernel.

use ndirect_simd::{F32x4, SimdVec};

/// Computes `C[0..MR][0..NR] += Apanel · Bpanel` over `kc` rank-1 updates.
///
/// * `a_panel` — `kc × MR`, laid out `[p*MR + r]` (from [`crate::pack::pack_a`]);
/// * `b_panel` — `kc × NR`, laid out `[p*NR + c]` (from [`crate::pack::pack_b`]);
/// * `c` — row-major with leading dimension `ldc`; the full `MR×NR` tile
///   must be in bounds (edge tiles go through [`microkernel_edge`]).
///
/// `NRV = NR/4` is the number of vector registers per row of the accumulator
/// file; the accumulators live in `MR × NRV` `F32x4`s for the whole `kc`
/// loop, mirroring the fixed register allocation of a hand-written kernel.
#[inline]
pub fn microkernel<const MR: usize, const NRV: usize>(
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
) {
    let nr = NRV * 4;
    debug_assert!(a_panel.len() >= kc * MR);
    debug_assert!(b_panel.len() >= kc * nr);
    debug_assert!(c.len() >= (MR - 1) * ldc + nr);

    let mut acc = [[F32x4::zero(); NRV]; MR];
    for p in 0..kc {
        let brow = &b_panel[p * nr..(p + 1) * nr];
        let mut bv = [F32x4::zero(); NRV];
        for (j, v) in bv.iter_mut().enumerate() {
            *v = F32x4::load(&brow[j * 4..]);
        }
        let arow = &a_panel[p * MR..(p + 1) * MR];
        for i in 0..MR {
            let ai = F32x4::splat(arow[i]);
            for j in 0..NRV {
                acc[i][j] = acc[i][j].fma(bv[j], ai);
            }
        }
    }
    for i in 0..MR {
        let crow = &mut c[i * ldc..i * ldc + nr];
        for j in 0..NRV {
            let sum = F32x4::load(&crow[j * 4..]).add(acc[i][j]);
            sum.store(&mut crow[j * 4..]);
        }
    }
}

/// Edge variant: computes into a private `MR×NR` tile, then accumulates only
/// the `rows × cols` live region into `C`. Used when a tile sticks out past
/// the matrix edge.
#[inline]
pub fn microkernel_edge<const MR: usize, const NRV: usize>(
    kc: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    c: &mut [f32],
    ldc: usize,
    rows: usize,
    cols: usize,
) {
    let nr = NRV * 4;
    debug_assert!(rows <= MR && cols <= nr);
    // 64-float stack tile covers MR·NR up to 8×8; the assert guards any
    // future wider instantiation.
    let mut tile = [0.0f32; 64];
    assert!(MR * nr <= tile.len(), "edge tile buffer too small");
    microkernel::<MR, NRV>(kc, a_panel, b_panel, &mut tile, nr);
    for i in 0..rows {
        let crow = &mut c[i * ldc..i * ldc + cols];
        for (cj, t) in crow.iter_mut().zip(&tile[i * nr..i * nr + cols]) {
            *cj += t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::pack::{pack_a, pack_b};

    fn run_kernel(m: usize, n: usize, k: usize) {
        const MR: usize = 6;
        const NRV: usize = 2;
        let nr = NRV * 4;
        assert!(m <= MR && n <= nr);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.3).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.7).cos()).collect();

        let mut pa = vec![0.0; MR * k];
        let mut pb = vec![0.0; nr * k];
        pack_a::<MR>(&a, k, m, k, &mut pa);
        pack_b::<{ NRV * 4 }>(&b, n, k, n, &mut pb);

        let mut c = vec![0.5; m * n];
        let mut expect = c.clone();
        naive::matmul(m, n, k, &a, &b, &mut expect);

        if m == MR && n == nr {
            microkernel::<MR, NRV>(k, &pa, &pb, &mut c, n);
        } else {
            microkernel_edge::<MR, NRV>(k, &pa, &pb, &mut c, n, m, n);
        }
        for (x, y) in c.iter().zip(&expect) {
            assert!((x - y).abs() < 1e-4, "m={m} n={n} k={k}: {x} vs {y}");
        }
    }

    #[test]
    fn full_tile_matches_naive() {
        run_kernel(6, 8, 17);
    }

    #[test]
    fn full_tile_k_one() {
        run_kernel(6, 8, 1);
    }

    #[test]
    fn edge_tiles_match_naive() {
        for m in 1..=6 {
            for n in 1..=8 {
                run_kernel(m, n, 5);
            }
        }
    }

    #[test]
    fn accumulates_rather_than_overwrites() {
        const MR: usize = 6;
        const NRV: usize = 2;
        let k = 3;
        let a = vec![1.0; MR * k];
        let b = vec![1.0; 8 * k];
        let mut pa = vec![0.0; MR * k];
        let mut pb = vec![0.0; 8 * k];
        pack_a::<MR>(&a, k, MR, k, &mut pa);
        pack_b::<8>(&b, 8, k, 8, &mut pb);
        let mut c = vec![100.0; MR * 8];
        microkernel::<MR, NRV>(k, &pa, &pb, &mut c, 8);
        assert!(c.iter().all(|&x| (x - 103.0).abs() < 1e-6));
    }
}

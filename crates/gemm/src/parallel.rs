//! Static-parallel GEMM driver.

use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::blocked::{gemm_strided, try_gemm_strided, BlockSizes};
use crate::error::{check_len, GemmError};
use crate::MR;

/// `C += A·B` on a thread team: the `M` dimension is split statically into
/// per-thread row stripes (rounded to `MR` so no register tile straddles
/// two threads). Row stripes are contiguous in row-major `C`, so each
/// thread receives a provably disjoint `&mut` subslice, and per-element
/// reduction order is unchanged — results are bitwise identical for every
/// thread count.
#[allow(clippy::too_many_arguments)] // BLAS-style signature
pub fn par_gemm(
    pool: &StaticPool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    blocks: BlockSizes,
) {
    try_par_gemm(pool, m, n, k, a, b, c, blocks).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`par_gemm`]: bad operand sizes and pool faults come
/// back as errors instead of panics/deadlocks.
#[allow(clippy::too_many_arguments)]
pub fn try_par_gemm(
    pool: &StaticPool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    blocks: BlockSizes,
) -> Result<(), GemmError> {
    check_len("A", m * k, a.len())?;
    check_len("B", k * n, b.len())?;
    check_len("C", m * n, c.len())?;
    if m == 0 || n == 0 {
        return Ok(());
    }

    let threads = pool.size();
    if threads == 1 || m < MR * 2 {
        return try_gemm_strided(m, n, k, a, k, b, n, c, n, blocks);
    }

    // Split M into MR-granular row stripes.
    let stripes = m.div_ceil(MR);
    let shared = SharedSlice::new(c);
    pool.run(|tid| {
        let stripe_range = split_static(stripes, threads, tid);
        if stripe_range.is_empty() {
            return;
        }
        let i0 = stripe_range.start * MR;
        let i1 = (stripe_range.end * MR).min(m);
        let mb = i1 - i0;
        // SAFETY: row stripes are disjoint contiguous ranges of C; the
        // pool's barrier ends all writes before `run` returns.
        let c_stripe = unsafe { shared.range_mut(i0 * n, mb * n) };
        gemm_strided(mb, n, k, &a[i0 * k..], k, b, n, c_stripe, n, blocks);
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn check_par(threads: usize, m: usize, n: usize, k: usize) {
        let pool = StaticPool::new(threads);
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 17) as f32 - 8.0) * 0.125).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 23) as f32 - 11.0) * 0.25).collect();
        let mut c = vec![0.0; m * n];
        let mut expect = vec![0.0; m * n];
        naive::matmul(m, n, k, &a, &b, &mut expect);
        par_gemm(&pool, m, n, k, &a, &b, &mut c, BlockSizes::default());
        for (i, (x, y)) in c.iter().zip(&expect).enumerate() {
            assert!(
                (x - y).abs() <= 1e-3 * y.abs().max(1.0),
                "threads={threads} ({m},{n},{k}) idx {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn matches_naive_across_thread_counts() {
        for threads in [1, 2, 3, 4, 7] {
            check_par(threads, 33, 50, 21);
        }
    }

    #[test]
    fn narrow_m_falls_back_to_sequential() {
        check_par(4, 9, 20, 8);
    }

    #[test]
    fn more_threads_than_stripes() {
        check_par(8, 17, 10, 5);
    }

    #[test]
    fn result_is_thread_count_invariant_bitwise() {
        let m = 24;
        let n = 64;
        let k = 16;
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.01).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32 * 0.02).cos()).collect();
        let mut c1 = vec![0.0; m * n];
        let mut c4 = vec![0.0; m * n];
        par_gemm(&StaticPool::new(1), m, n, k, &a, &b, &mut c1, BlockSizes::default());
        par_gemm(&StaticPool::new(4), m, n, k, &a, &b, &mut c4, BlockSizes::default());
        // Each element's reduction order is identical regardless of which
        // thread owns its row, so results agree bitwise.
        assert_eq!(c1, c4);
    }
}

//! Operand packing for the Goto algorithm.
//!
//! Packing rewrites a cache block of each operand into the exact order the
//! micro-kernel consumes, so the inner loop issues only unit-stride vector
//! loads. Partial edge panels are zero-padded to full `MR`/`NR` width, which
//! keeps the micro-kernel branch-free (the driver masks the copy-out
//! instead).

/// Packs an `mc×kc` block of `A` (row-major, leading dimension `lda`)
/// into `⌈mc/MR⌉` panels; panel `i` holds columns-of-`MR`-rows:
/// `packed[p*MR + r] = A[i*MR + r][p]`.
pub fn pack_a<const MR: usize>(
    a: &[f32],
    lda: usize,
    mc: usize,
    kc: usize,
    packed: &mut [f32],
) {
    let panels = mc.div_ceil(MR);
    assert!(packed.len() >= panels * MR * kc, "packed A too small");
    for pi in 0..panels {
        let row0 = pi * MR;
        let rows = MR.min(mc - row0);
        let panel = &mut packed[pi * MR * kc..(pi + 1) * MR * kc];
        for p in 0..kc {
            let dst = &mut panel[p * MR..p * MR + MR];
            for r in 0..rows {
                dst[r] = a[(row0 + r) * lda + p];
            }
            for d in dst[rows..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

/// Packs a `kc×nc` block of `B` (row-major, leading dimension `ldb`)
/// into `⌈nc/NR⌉` panels; panel `j` holds rows-of-`NR`-columns:
/// `packed[p*NR + c] = B[p][j*NR + c]`.
pub fn pack_b<const NR: usize>(
    b: &[f32],
    ldb: usize,
    kc: usize,
    nc: usize,
    packed: &mut [f32],
) {
    let panels = nc.div_ceil(NR);
    assert!(packed.len() >= panels * NR * kc, "packed B too small");
    for pj in 0..panels {
        let col0 = pj * NR;
        let cols = NR.min(nc - col0);
        let panel = &mut packed[pj * NR * kc..(pj + 1) * NR * kc];
        for p in 0..kc {
            let src = &b[p * ldb + col0..p * ldb + col0 + cols];
            let dst = &mut panel[p * NR..p * NR + NR];
            dst[..cols].copy_from_slice(src);
            for d in dst[cols..].iter_mut() {
                *d = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_full_panel() {
        // A = 2x3 with MR=2: one panel, column-major within panel.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut packed = vec![0.0; 6];
        pack_a::<2>(&a, 3, 2, 3, &mut packed);
        assert_eq!(packed, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn pack_a_zero_pads_partial_panel() {
        // 3 rows with MR=2: second panel has one live row.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2
        let mut packed = vec![9.0; 8];
        pack_a::<2>(&a, 2, 3, 2, &mut packed);
        assert_eq!(packed, vec![1.0, 3.0, 2.0, 4.0, 5.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn pack_b_full_panel() {
        // B = 2x4 with NR=4: identity ordering.
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut packed = vec![0.0; 8];
        pack_b::<4>(&b, 4, 2, 4, &mut packed);
        assert_eq!(packed, b.to_vec());
    }

    #[test]
    fn pack_b_zero_pads_partial_panel() {
        // B = 2x3 with NR=2: panels [cols 0..2], [col 2 + pad].
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut packed = vec![9.0; 8];
        pack_b::<2>(&b, 3, 2, 3, &mut packed);
        assert_eq!(packed, vec![1.0, 2.0, 4.0, 5.0, 3.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn pack_respects_leading_dimension() {
        // Take the left 2x2 block of a 2x3 matrix.
        let b = [1.0, 2.0, 99.0, 3.0, 4.0, 99.0];
        let mut packed = vec![0.0; 4];
        pack_b::<2>(&b, 3, 2, 2, &mut packed);
        assert_eq!(packed, vec![1.0, 2.0, 3.0, 4.0]);
    }
}

//! Chaos suite: deterministic fault storms against a live server.
//!
//! Every test pins the contract from DESIGN.md §13: **every injected
//! fault maps to a typed [`ServeError`] or a degraded-but-correct result
//! (bitwise-checked against a reference plan), and nothing ever hangs** —
//! each scenario runs under a 10-second watchdog thread.
//!
//! Run with `cargo test -p ndirect-serve --features chaos`.

#![cfg(feature = "chaos")]

use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use ndirect_core::{ConvPlan, Schedule};
use ndirect_serve::faults::Faults;
use ndirect_serve::{pinned_schedule, ModelDef, ServeConfig, ServeError, Server, Ticket};
use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;

const MODEL: &str = "chaos-layer";
const FILTER_SEED: u64 = 11;

fn shape1() -> ConvShape {
    ConvShape::square(1, 4, 8, 6, 3, 1)
}

fn model_def() -> ModelDef {
    let shape = shape1();
    ModelDef {
        name: MODEL.into(),
        shape,
        filter: fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), FILTER_SEED),
    }
}

fn input(seed: u64) -> Tensor4 {
    fill::random_tensor(Tensor4::input_for(&shape1(), ActLayout::Nchw), seed)
}

/// Bitwise reference through the same pinned schedule the server uses.
/// The pinned schedule fixes tile parameters (and with them the float
/// accumulation grouping) across batch sizes, so this N=1 run is the
/// ground truth for a request served at *any* batch size.
fn pinned_reference(in_seed: u64, threads: usize) -> Vec<f32> {
    reference_with(&pinned_schedule(&ndirect_platform::host(), &shape1(), threads), in_seed, threads)
}

/// Bitwise reference through the minimal (degraded) schedule, whose tile
/// parameters are also batch-size-independent.
fn minimal_reference(in_seed: u64) -> Vec<f32> {
    reference_with(&Schedule::minimal(&shape1()), in_seed, 1)
}

fn reference_with(schedule: &Schedule, in_seed: u64, threads: usize) -> Vec<f32> {
    let shape = shape1();
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), FILTER_SEED);
    let plan = ConvPlan::try_with_schedule(&shape, &filter, schedule).expect("reference plan");
    let pool = StaticPool::new(threads);
    let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
    plan.execute(&pool, &input(in_seed), &mut out).expect("reference exec");
    out.as_slice().to_vec()
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        threads_per_shard: 1,
        batch_linger: Duration::ZERO,
        retry_backoff: Duration::from_micros(100),
        ..ServeConfig::default()
    }
}

/// Runs `f` on its own thread and fails the test if it has not finished
/// within 10 seconds — the suite-wide hang detector. Panics inside `f`
/// propagate.
fn watchdog<F>(name: &'static str, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::Builder::new()
        .name(format!("chaos-{name}"))
        .spawn(move || {
            f();
            let _ = tx.send(());
        })
        .expect("spawn watchdog subject");
    match rx.recv_timeout(Duration::from_secs(10)) {
        Ok(()) => handle.join().expect("scenario thread"),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The scenario panicked before sending; join to propagate it.
            handle.join().expect("scenario thread panicked");
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos scenario `{name}` exceeded the 10 s watchdog: hang")
        }
    }
}

/// A resolved ticket must be Ok-and-bitwise-correct or a *typed* error
/// from the expected family — never a hang (the caller's watchdog covers
/// that) and never silently wrong data.
fn assert_resolution(
    who: &str,
    ticket: Ticket,
    in_seed: u64,
    threads: usize,
    error_ok: impl Fn(&ServeError) -> bool,
) {
    match ticket.wait_timeout(Duration::from_secs(8)) {
        Ok(Ok(resp)) => {
            let want = if resp.degraded {
                minimal_reference(in_seed)
            } else {
                pinned_reference(in_seed, threads)
            };
            assert_eq!(
                resp.output.as_slice(),
                want.as_slice(),
                "{who}: delivered result must be bitwise-correct (degraded={})",
                resp.degraded
            );
        }
        Ok(Err(e)) => assert!(error_ok(&e), "{who}: unexpected error class: {e}"),
        Err(_) => panic!("{who}: ticket unresolved — stranded request"),
    }
}

#[test]
fn alloc_refusal_storm_degrades_or_fails_typed() {
    watchdog("alloc-refusal", || {
        let faults = Arc::new(Faults::new());
        let server = Server::with_faults(
            ServeConfig { max_retries: 1, ..quick_config() },
            vec![model_def()],
            Arc::clone(&faults),
        )
        .expect("server");
        // Refuse a whole storm of scratch allocations; fresh (batched)
        // plan builds hit the refusals, retry, degrade, or exhaust.
        faults.refuse_next_allocs(6);
        faults.stall_queue_once_ms(40);
        let tickets: Vec<_> = (0..4)
            .map(|i| server.submit(MODEL, input(i), None).expect("submit"))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            assert_resolution("alloc-refusal", t, i as u64, 1, |e| {
                matches!(e, ServeError::RetriesExhausted { .. })
            });
        }
        server.shutdown();
    });
}

#[test]
fn worker_death_storm_is_healed_without_wrong_answers() {
    watchdog("worker-death", || {
        let faults = Arc::new(Faults::new());
        let server = Server::with_faults(
            ServeConfig { threads_per_shard: 2, ..quick_config() },
            vec![model_def()],
            Arc::clone(&faults),
        )
        .expect("server");
        faults.kill_worker_before_next_batches(3);
        for round in 0..5u64 {
            let resp = server
                .submit(MODEL, input(round), None)
                .expect("submit")
                .wait()
                .expect("served across respawns");
            assert_eq!(
                resp.output.as_slice(),
                pinned_reference(round, 2).as_slice(),
                "round {round}: bitwise across worker death"
            );
        }
        assert!(server.stats().worker_deaths >= 3, "all kills landed and healed");
        server.shutdown();
    });
}

#[test]
fn slow_kernels_trip_backpressure_into_typed_shed() {
    watchdog("overload-shed", || {
        let faults = Arc::new(Faults::new());
        let server = Server::with_faults(
            ServeConfig {
                queue_capacity: 4,
                high_water: 2,
                max_batch: 1,
                ..quick_config()
            },
            vec![model_def()],
            Arc::clone(&faults),
        )
        .expect("server");
        faults.slow_kernels_ms(150);
        let mut admitted = Vec::new();
        let mut shed = 0usize;
        for i in 0..10u64 {
            match server.submit(MODEL, input(i), None) {
                Ok(t) => admitted.push((i, t)),
                Err(e @ ServeError::Overloaded { .. }) => {
                    assert!(e.is_retryable());
                    assert!(e.retry_after().expect("hint") >= Duration::from_millis(1));
                    shed += 1;
                }
                Err(other) => panic!("expected Overloaded, got {other}"),
            }
        }
        assert!(shed > 0, "slow kernels must eventually trip the high-water shed");
        faults.slow_kernels_ms(0); // lift the fault; the backlog drains fast
        for (seed, t) in admitted {
            assert_resolution("overload-shed", t, seed, 1, |_| false);
        }
        assert_eq!(server.stats().shed as usize, shed);
        server.shutdown();
    });
}

#[test]
fn queue_stall_expires_deadlines_without_kernel_slots() {
    watchdog("queue-stall", || {
        let faults = Arc::new(Faults::new());
        // Armed before the server exists: the batcher's first loop
        // iteration consumes the stall, and the short-deadline requests
        // submitted during it all expire in-queue.
        faults.stall_queue_once_ms(150);
        let server =
            Server::with_faults(quick_config(), vec![model_def()], Arc::clone(&faults)).expect("server");
        let doomed: Vec<_> = (1..4u64)
            .map(|i| {
                server
                    .submit_within(MODEL, input(i), Duration::from_millis(20))
                    .expect("admitted")
            })
            .collect();
        for t in doomed {
            match t.wait_timeout(Duration::from_secs(8)) {
                Ok(Err(ServeError::DeadlineExpired { .. })) => {}
                Ok(other) => panic!("expected queue expiry, got {:?}", other.map(|r| r.batch)),
                Err(_) => panic!("expired ticket stranded"),
            }
        }
        let stats = server.stats();
        assert_eq!(stats.batches, 0, "expired requests never dispatched");
        assert_eq!(stats.deadline_misses, 3);
        server.shutdown();
    });
}

#[test]
fn poison_storm_is_isolated_peer_by_peer() {
    watchdog("poison-isolation", || {
        let faults = Arc::new(Faults::new());
        faults.stall_queue_once_ms(60);
        let server =
            Server::with_faults(quick_config(), vec![model_def()], Arc::clone(&faults)).expect("server");
        // Batch of five with two poisoned members.
        let mut tickets = Vec::new();
        for i in 0..5u64 {
            if i == 1 || i == 3 {
                faults.poison_next_submits(1);
            }
            tickets.push((i, server.submit(MODEL, input(i), None).expect("submit")));
        }
        for (i, t) in tickets {
            if i == 1 || i == 3 {
                assert!(
                    matches!(t.wait(), Err(ServeError::WorkerPanicked)),
                    "poisoned request {i} fails alone, typed"
                );
            } else {
                assert_resolution("poison-isolation", t, i, 1, |_| false);
            }
        }
        let stats = server.stats();
        assert_eq!(stats.isolated_panics, 2);
        assert_eq!(stats.completed, 3);
        server.shutdown();
    });
}

#[test]
fn full_storm_every_ticket_resolves_typed_or_correct() {
    watchdog("full-storm", || {
        let faults = Arc::new(Faults::new());
        let server = Server::with_faults(
            ServeConfig {
                threads_per_shard: 2,
                queue_capacity: 64,
                high_water: 48,
                max_retries: 1,
                ..quick_config()
            },
            vec![model_def()],
            Arc::clone(&faults),
        )
        .expect("server");
        // Everything at once: refusals, kills, poison, slowdown, stall.
        faults.refuse_next_allocs(4);
        faults.kill_worker_before_next_batches(2);
        faults.slow_kernels_ms(5);
        faults.stall_queue_once_ms(30);
        let mut tickets = Vec::new();
        for i in 0..24u64 {
            if i % 7 == 3 {
                faults.poison_next_submits(1);
            }
            let deadline = (i % 5 == 4).then(|| Instant::now() + Duration::from_millis(15));
            match server.submit(MODEL, input(i), deadline) {
                Ok(t) => tickets.push((i, t)),
                Err(e) => {
                    // Admission refusals must be typed shed/expiry.
                    assert!(
                        matches!(
                            e,
                            ServeError::Overloaded { .. } | ServeError::DeadlineExpired { .. }
                        ),
                        "typed admission error, got {e}"
                    );
                }
            }
        }
        for (i, t) in tickets {
            assert_resolution("full-storm", t, i, 2, |e| {
                matches!(
                    e,
                    ServeError::WorkerPanicked
                        | ServeError::RetriesExhausted { .. }
                        | ServeError::DeadlineExpired { .. }
                )
            });
        }
        assert!(faults.injected() > 0, "the storm actually fired");
        server.shutdown();
    });
}

#[test]
fn shutdown_under_chaos_strands_no_ticket() {
    watchdog("drain-chaos", || {
        let faults = Arc::new(Faults::new());
        faults.slow_kernels_ms(20);
        faults.stall_queue_once_ms(40);
        let server =
            Server::with_faults(quick_config(), vec![model_def()], Arc::clone(&faults)).expect("server");
        let tickets: Vec<_> = (0..8u64)
            .map(|i| (i, server.submit(MODEL, input(i), None).expect("submit")))
            .collect();
        server.shutdown();
        // Post-drain: everything admitted was completed, not dropped.
        for (i, t) in tickets {
            assert_resolution("drain-chaos", t, i, 1, |_| false);
        }
    });
}

/// ISSUE 9 acceptance: after a deterministic multi-phase fault storm, the
/// final metrics snapshot's counters **exactly** account for every
/// injected fault — arrival expiries, queue expiries, retries,
/// degradations, and panics each equal their armed totals (hard
/// equality), the conservation law `enqueued == completed + failed`
/// holds, and the latency histogram's quantiles respect the documented
/// bucket error bound against client-observed wall times.
#[test]
fn metrics_snapshot_accounts_for_every_injected_fault() {
    use ndirect_probe::metrics::{parse_prometheus, MetricsSnapshot, MAX_RELATIVE_ERROR};
    use ndirect_serve::METRIC_CATALOG;

    watchdog("metrics-accounting", || {
        let faults = Arc::new(Faults::new());
        // Phase B's fault, armed before the server exists so the batcher's
        // first loop iteration consumes the stall.
        faults.stall_queue_once_ms(150);
        let server = Server::with_faults(
            ServeConfig {
                max_retries: 1,
                // Generous linger so back-to-back submits of a phase are
                // deterministically coalesced into one batch.
                batch_linger: Duration::from_millis(200),
                ..quick_config()
            },
            vec![model_def()],
            Arc::clone(&faults),
        )
        .expect("server");

        // Phase B — 3 queue expiries: the batcher sleeps through the
        // stall while these 20 ms deadlines lapse in the queue.
        let doomed: Vec<_> = (0..3u64)
            .map(|i| {
                server
                    .submit_within(MODEL, input(100 + i), Duration::from_millis(20))
                    .expect("admitted")
            })
            .collect();

        // Phase A — 2 arrival expiries: already-passed deadlines are
        // refused at the door and never enter the queue.
        for i in 0..2u64 {
            match server.submit_within(MODEL, input(200 + i), Duration::ZERO) {
                Err(ServeError::DeadlineExpired { .. }) => {}
                other => panic!("expected arrival expiry, got {:?}", other.map(|t| t.id())),
            }
        }
        for t in doomed {
            match t.wait_timeout(Duration::from_secs(8)) {
                Ok(Err(ServeError::DeadlineExpired { .. })) => {}
                Ok(other) => panic!("expected queue expiry, got {:?}", other.map(|r| r.batch)),
                Err(_) => panic!("doomed ticket stranded"),
            }
        }

        // Every completed request's client-observed wall time upper-bounds
        // its server-side latency; the histogram's p100 must stay within
        // one bucket width of the slowest of these.
        let mut wall_ns: Vec<u64> = Vec::new();
        let mut timed_wait = |seed: u64, t: Ticket, started: Instant, want_degraded: bool| {
            let resp = t.wait_timeout(Duration::from_secs(8)).expect("resolved").expect("ok");
            wall_ns.push(started.elapsed().as_nanos() as u64);
            assert_eq!(resp.degraded, want_degraded, "seed {seed}: degraded flag");
            let want = if want_degraded { minimal_reference(seed) } else { pinned_reference(seed, 1) };
            assert_eq!(resp.output.as_slice(), want.as_slice(), "seed {seed}: bitwise");
        };

        // Phase C — 2 refused allocations against the fresh N = 2 plan:
        // one retry (max_retries = 1), then both requests complete on the
        // degraded minimal-schedule plan.
        faults.refuse_next_allocs(2);
        let c_started = Instant::now();
        let c1 = server.submit(MODEL, input(1), None).expect("submit c1");
        let c2 = server.submit(MODEL, input(2), None).expect("submit c2");
        timed_wait(1, c1, c_started, true);
        timed_wait(2, c2, c_started, true);

        // Phase D — 2 poisoned requests panic the batch; isolation fails
        // exactly the poisoned pair and completes their peer.
        faults.poison_next_submits(2);
        let d_started = Instant::now();
        let d1 = server.submit(MODEL, input(3), None).expect("submit d1");
        let d2 = server.submit(MODEL, input(4), None).expect("submit d2");
        let d3 = server.submit(MODEL, input(5), None).expect("submit d3");
        for (who, t) in [("d1", d1), ("d2", d2)] {
            assert!(
                matches!(t.wait_timeout(Duration::from_secs(8)), Ok(Err(ServeError::WorkerPanicked))),
                "{who}: poisoned request fails alone, typed"
            );
        }
        timed_wait(5, d3, d_started, false);

        // Phase E — 4 clean completions.
        let e_started = Instant::now();
        let clean: Vec<_> = (10..14u64)
            .map(|i| (i, server.submit(MODEL, input(i), None).expect("submit clean")))
            .collect();
        for (i, t) in clean {
            timed_wait(i, t, e_started, false);
        }

        // --- The accounting ---------------------------------------------
        let snap = server.metrics_snapshot();
        let agg = |name: &str| snap.counter(name, &[]).unwrap_or_else(|| panic!("counter {name}"));

        // Injected-fault totals, hard equality.
        assert_eq!(agg("serve_expired_arrival_total"), 2, "arrival expiries");
        assert_eq!(agg("serve_expired_queue_total"), 3, "queue expiries (stall sweep)");
        assert_eq!(agg("serve_retries_total"), 1, "2 refusals / max_retries 1 = one backoff");
        assert_eq!(agg("serve_degraded_total"), 2, "both phase-C requests degraded");
        assert_eq!(agg("serve_panics_total"), 2, "both poisoned requests isolated");
        assert_eq!(agg("serve_shed_total"), 2, "sheds = the arrival expiries");
        assert_eq!(agg("serve_shed_overload_total"), 0);
        assert_eq!(agg("serve_late_total"), 0);

        // Conservation: every admitted request is completed or failed.
        let enqueued = agg("serve_enqueued_total");
        assert_eq!(enqueued, 12);
        assert_eq!(agg("serve_completed_total"), 7);
        assert_eq!(agg("serve_failed_total"), 5, "3 queue expiries + 2 isolated panics");
        assert_eq!(agg("serve_completed_total") + agg("serve_failed_total"), enqueued);
        // Dispatched work: everything admitted that did not expire in queue.
        assert_eq!(agg("serve_batched_requests_total"), 9);

        // The per-model scope mirrors the aggregate exactly (one model).
        let model_labels = [("model", MODEL)];
        for name in METRIC_CATALOG.iter().filter(|n| n.ends_with("_total")) {
            assert_eq!(
                snap.counter(name, &model_labels),
                Some(agg(name)),
                "{name}: model scope mirrors aggregate"
            );
        }

        // Stage histograms carry one sample per request that crossed the
        // stage: 9 dispatched, 7 executed-and-delivered.
        let hist = |name: &str| snap.histogram(name, &[]).unwrap_or_else(|| panic!("histogram {name}"));
        assert_eq!(hist("serve_stage_admission_ns").count, 9);
        assert_eq!(hist("serve_stage_linger_ns").count, 9);
        assert_eq!(hist("serve_stage_dispatch_ns").count, 9);
        assert_eq!(hist("serve_stage_execute_ns").count, 7);
        assert_eq!(hist("serve_stage_delivery_ns").count, 7);
        assert_eq!(hist("serve_service_ns").count, 7);
        let latency = hist("serve_latency_ns");
        assert_eq!(latency.count, 7, "one latency sample per completion");
        assert_eq!(latency.buckets.iter().map(|&(_, n)| n).sum::<u64>(), latency.count);

        // Quantile error bound, cross-checked against the client's clock:
        // server-side latency <= client wall time per request, and the
        // histogram may overshoot the true maximum by at most one bucket
        // width (MAX_RELATIVE_ERROR).
        let max_wall = *wall_ns.iter().max().expect("completions");
        let p100 = latency.quantile(100.0);
        assert!(p100 > 0);
        let bound = max_wall + (MAX_RELATIVE_ERROR * max_wall as f64).ceil() as u64;
        assert!(
            p100 <= bound,
            "latency p100 {p100} exceeds client-observed max {max_wall} + bucket error ({bound})"
        );
        for pair in [(50.0, 99.0), (99.0, 100.0)] {
            assert!(latency.quantile(pair.0) <= latency.quantile(pair.1), "quantiles monotone");
        }

        // Export surface: every catalogued family is present, the JSON
        // round-trips losslessly, and the Prometheus text parses back.
        for name in METRIC_CATALOG {
            assert!(snap.family(name).is_some(), "catalog family {name} missing from snapshot");
        }
        let rt = MetricsSnapshot::from_json(&snap.to_json()).expect("json round-trip");
        assert_eq!(rt, snap, "JSON serialization is lossless");
        let prom = parse_prometheus(&snap.to_prometheus()).expect("prometheus parses");
        assert!(!prom.is_empty());

        server.shutdown();
    });
}

//! Serving-engine unit tests: correctness of batched results, admission
//! control, fault handling, and the table-driven deadline-semantics
//! suite. These run in tier-1 (`cfg(test)` compiles the fault sheet in);
//! the heavier end-to-end chaos scenarios live in `tests/chaos.rs` behind
//! the `chaos` feature.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ndirect_core::{ConvPlan, Schedule};
use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;

use crate::faults::Faults;
use crate::{pinned_schedule, ExpiredAt, ModelDef, ServeConfig, ServeError, Server};

const MODEL: &str = "layer";

fn small_shape() -> ConvShape {
    ConvShape::square(1, 4, 8, 6, 3, 1)
}

fn model_def(seed: u64) -> ModelDef {
    let shape = small_shape();
    ModelDef {
        name: MODEL.into(),
        shape,
        filter: fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), seed),
    }
}

fn input(seed: u64) -> Tensor4 {
    fill::random_tensor(Tensor4::input_for(&small_shape(), ActLayout::Nchw), seed)
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        threads_per_shard: 1,
        batch_linger: Duration::ZERO,
        retry_backoff: Duration::from_micros(100),
        ..ServeConfig::default()
    }
}

/// Reference result computed directly through a plan with the *same*
/// pinned schedule the server uses — the bitwise ground truth.
fn reference(filter_seed: u64, in_seed: u64) -> Vec<f32> {
    let shape = small_shape();
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), filter_seed);
    let pinned = pinned_schedule(&ndirect_platform::host(), &shape, 1);
    let plan = ConvPlan::try_with_schedule(&shape, &filter, &pinned).expect("reference plan");
    let pool = StaticPool::new(1);
    let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
    plan.execute(&pool, &input(in_seed), &mut out).expect("reference exec");
    out.as_slice().to_vec()
}

#[test]
fn single_request_round_trip_is_bitwise_correct() {
    let server = Server::try_new(quick_config(), vec![model_def(1)]).expect("server");
    let resp = server
        .submit(MODEL, input(7), None)
        .expect("submit")
        .wait()
        .expect("result");
    assert!(!resp.late && !resp.degraded);
    assert_eq!(resp.output.as_slice(), reference(1, 7).as_slice(), "bitwise");
    let stats = server.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.shed, 0);
    server.shutdown();
}

#[test]
fn batched_execution_is_bitwise_identical_to_single() {
    // Stall the batcher so all requests coalesce into ONE batch, then
    // check each against its individually-executed reference: the pinned
    // schedule makes batching invisible to the numerics.
    let faults = Arc::new(Faults::new());
    faults.stall_queue_once_ms(60);
    let server =
        Server::with_faults(quick_config(), vec![model_def(1)], Arc::clone(&faults)).expect("server");
    let tickets: Vec<_> = (0..4)
        .map(|i| server.submit(MODEL, input(100 + i), None).expect("submit"))
        .collect();
    let mut batch_sizes = Vec::new();
    for (i, t) in tickets.into_iter().enumerate() {
        let resp = t.wait().expect("result");
        assert_eq!(
            resp.output.as_slice(),
            reference(1, 100 + i as u64).as_slice(),
            "request {i} bitwise vs its N=1 reference"
        );
        batch_sizes.push(resp.batch);
    }
    assert!(
        batch_sizes.iter().any(|&b| b > 1),
        "stalled batcher must have coalesced: {batch_sizes:?}"
    );
    server.shutdown();
}

#[test]
fn unknown_model_and_bad_input_are_typed() {
    let server = Server::try_new(quick_config(), vec![model_def(1)]).expect("server");
    assert!(matches!(
        server.submit("nope", input(1), None),
        Err(ServeError::UnknownModel { .. })
    ));
    let wrong = Tensor4::zeros(1, 3, 6, 6, ActLayout::Nchw);
    match server.submit(MODEL, wrong, None) {
        Err(ServeError::BadInput { expected, got, .. }) => {
            assert_eq!(expected, (1, 4, 6, 6));
            assert_eq!(got, (1, 3, 6, 6));
        }
        other => panic!("expected BadInput, got {:?}", other.map(|t| t.id())),
    }
    let nhwc = Tensor4::zeros(1, 4, 6, 6, ActLayout::Nhwc);
    assert!(matches!(
        server.submit(MODEL, nhwc, None),
        Err(ServeError::BadInput { .. })
    ));
    server.shutdown();
}

#[test]
fn overload_sheds_with_backoff_hint() {
    let faults = Arc::new(Faults::new());
    faults.stall_queue_once_ms(200);
    let config = ServeConfig {
        queue_capacity: 4,
        high_water: 2,
        ..quick_config()
    };
    let server = Server::with_faults(config, vec![model_def(1)], Arc::clone(&faults)).expect("server");
    let _t1 = server.submit(MODEL, input(1), None).expect("first admitted");
    let _t2 = server.submit(MODEL, input(2), None).expect("second admitted");
    match server.submit(MODEL, input(3), None) {
        Err(e @ ServeError::Overloaded { depth, .. }) => {
            assert_eq!(depth, 2);
            assert!(e.is_retryable());
            let hint = e.retry_after().expect("hint");
            assert!(hint >= Duration::from_millis(1) && hint <= Duration::from_secs(2));
        }
        other => panic!("expected Overloaded, got {:?}", other.map(|t| t.id())),
    }
    assert_eq!(server.stats().shed, 1);
    server.shutdown();
}

/// ISSUE 9 satellite: the `Overloaded::retry_after` hint is derived from
/// the measured backlog and p99 service time (`metrics::retry_hint`), and
/// the clamp yields exactly three regimes.
#[test]
fn retry_hint_regime_table() {
    use crate::metrics::{retry_hint, COLD_SERVICE_NS, RETRY_AFTER_CEIL, RETRY_AFTER_FLOOR};

    struct Case {
        name: &'static str,
        depth: usize,
        shards: usize,
        p99_ns: u64,
        expect: Duration,
    }
    let cases = [
        // Light load: a shallow queue of microsecond requests drains well
        // under a millisecond — the hint is floor-clamped so clients back
        // off a meaningful amount instead of busy-retrying.
        Case { name: "light/floor", depth: 4, shards: 2, p99_ns: 50_000, expect: RETRY_AFTER_FLOOR },
        Case { name: "light/empty-queue", depth: 0, shards: 4, p99_ns: 1_000, expect: RETRY_AFTER_FLOOR },
        // Moderate load: the estimate passes through proportionally —
        // depth × p99 / shards.
        Case {
            name: "moderate/proportional",
            depth: 100,
            shards: 2,
            p99_ns: 1_000_000, // 1 ms p99 → 100 · 1 ms / 2 = 50 ms
            expect: Duration::from_millis(50),
        },
        Case {
            name: "moderate/more-shards-drain-faster",
            depth: 100,
            shards: 4,
            p99_ns: 1_000_000, // same backlog, twice the shards → 25 ms
            expect: Duration::from_millis(25),
        },
        // Saturated: a deep queue of slow requests would take minutes;
        // the ceiling caps the hint at 2 s so clients re-probe.
        Case {
            name: "saturated/ceiling",
            depth: 5000,
            shards: 1,
            p99_ns: 20_000_000,
            expect: RETRY_AFTER_CEIL,
        },
        // No completion observed yet: falls back to the cold estimate.
        Case {
            name: "cold/fallback",
            depth: 400,
            shards: 2,
            p99_ns: 0, // → COLD_SERVICE_NS per request: 400 · 10 ms / 2 = 2 s cap
            expect: RETRY_AFTER_CEIL,
        },
    ];
    for c in cases {
        assert_eq!(retry_hint(c.depth, c.shards, c.p99_ns), c.expect, "case {}", c.name);
    }
    // The cold fallback constant is what the proportional path uses.
    assert_eq!(
        retry_hint(10, 1, 0),
        retry_hint(10, 1, COLD_SERVICE_NS),
        "p99 = 0 behaves exactly like a measured cold-estimate p99"
    );
}

#[test]
fn transient_alloc_refusal_is_retried_transparently() {
    let faults = Arc::new(Faults::new());
    let server =
        Server::with_faults(quick_config(), vec![model_def(1)], Arc::clone(&faults)).expect("server");
    // The N=1 plan is pre-built; arm the refusal and force a NEW plan
    // build by batching two requests.
    faults.refuse_next_allocs(1);
    faults.stall_queue_once_ms(40);
    let t1 = server.submit(MODEL, input(1), None).expect("submit");
    let t2 = server.submit(MODEL, input(2), None).expect("submit");
    let r1 = t1.wait().expect("retried to success");
    let r2 = t2.wait().expect("retried to success");
    assert!(!r1.degraded && !r2.degraded, "fast plan after retry");
    assert_eq!(r1.output.as_slice(), reference(1, 1).as_slice());
    assert_eq!(r2.output.as_slice(), reference(1, 2).as_slice());
    let stats = server.stats();
    assert!(stats.retries >= 1, "retry happened: {stats:?}");
    assert_eq!(faults.injected(), 2, "stall + one refusal consumed");
    server.shutdown();
}

#[test]
fn exhausted_retries_degrade_to_minimal_schedule_correctly() {
    let config = ServeConfig { max_retries: 1, ..quick_config() };
    let faults = Arc::new(Faults::new());
    let server =
        Server::with_faults(config, vec![model_def(1)], Arc::clone(&faults)).expect("server");
    // Two refusals cover the first try + single retry of a fresh batch
    // plan; the degraded build then succeeds.
    faults.refuse_next_allocs(2);
    faults.stall_queue_once_ms(40);
    let t1 = server.submit(MODEL, input(5), None).expect("submit");
    let t2 = server.submit(MODEL, input(6), None).expect("submit");
    let r1 = t1.wait().expect("degraded result");
    let r2 = t2.wait().expect("degraded result");
    assert!(r1.degraded && r2.degraded, "minimal-schedule fallback used");
    // Degraded ≠ pinned bits (different tile grouping), but must equal
    // the minimal-schedule reference — degraded-but-correct. The batch
    // held 2 requests, so the reference is built at that batch size.
    let shape1 = small_shape();
    let shape2 = ConvShape { n: 2, ..shape1 };
    let filter = fill::random_filter(Filter::for_shape(&shape1, FilterLayout::Kcrs), 1);
    let plan = ConvPlan::try_with_schedule(&shape2, &filter, &Schedule::minimal(&shape2))
        .expect("reference degraded plan");
    let pool = StaticPool::new(1);
    let mut batch_in = Tensor4::zeros(2, shape1.c, shape1.h, shape1.w, ActLayout::Nchw);
    let half = shape1.c * shape1.h * shape1.w;
    batch_in.as_mut_slice()[..half].copy_from_slice(input(5).as_slice());
    batch_in.as_mut_slice()[half..].copy_from_slice(input(6).as_slice());
    let mut out = Tensor4::zeros(2, shape1.k, shape1.p(), shape1.q(), ActLayout::Nchw);
    plan.execute(&pool, &batch_in, &mut out).expect("reference exec");
    let out_half = shape1.k * shape1.p() * shape1.q();
    assert_eq!(r1.output.as_slice(), &out.as_slice()[..out_half]);
    assert_eq!(r2.output.as_slice(), &out.as_slice()[out_half..]);
    assert!(server.stats().degraded >= 2);
    server.shutdown();
}

#[test]
fn total_transient_failure_yields_retries_exhausted() {
    let config = ServeConfig { max_retries: 1, ..quick_config() };
    let faults = Arc::new(Faults::new());
    let server =
        Server::with_faults(config, vec![model_def(1)], Arc::clone(&faults)).expect("server");
    // First try + 1 retry + degraded fallback = 3 refusals needed to
    // exhaust everything for one fresh (batched) plan.
    faults.refuse_next_allocs(3);
    faults.stall_queue_once_ms(40);
    let t1 = server.submit(MODEL, input(1), None).expect("submit");
    let t2 = server.submit(MODEL, input(2), None).expect("submit");
    for t in [t1, t2] {
        match t.wait() {
            Err(e @ ServeError::RetriesExhausted { attempts, .. }) => {
                assert_eq!(attempts, 2);
                assert!(e.is_retryable());
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn poisoned_request_fails_alone_batch_peers_complete() {
    let faults = Arc::new(Faults::new());
    faults.stall_queue_once_ms(60);
    let server =
        Server::with_faults(quick_config(), vec![model_def(1)], Arc::clone(&faults)).expect("server");
    let t_before = server.submit(MODEL, input(21), None).expect("submit");
    faults.poison_next_submits(1);
    let t_poisoned = server.submit(MODEL, input(22), None).expect("submit");
    let t_after = server.submit(MODEL, input(23), None).expect("submit");

    let good = t_before.wait().expect("peer completes");
    assert_eq!(good.output.as_slice(), reference(1, 21).as_slice(), "bitwise peer");
    assert!(matches!(t_poisoned.wait(), Err(ServeError::WorkerPanicked)));
    let good2 = t_after.wait().expect("peer completes");
    assert_eq!(good2.output.as_slice(), reference(1, 23).as_slice(), "bitwise peer");
    let stats = server.stats();
    assert_eq!(stats.isolated_panics, 1);
    assert_eq!(stats.completed, 2);
    server.shutdown();
}

#[test]
fn worker_death_during_service_is_healed_and_results_stay_correct() {
    let config = ServeConfig { threads_per_shard: 2, ..quick_config() };
    let faults = Arc::new(Faults::new());
    let server =
        Server::with_faults(config, vec![model_def(1)], Arc::clone(&faults)).expect("server");
    faults.kill_worker_before_next_batches(1);
    let resp = server
        .submit(MODEL, input(9), None)
        .expect("submit")
        .wait()
        .expect("served across the respawn");
    // Reference with the 2-thread pinned schedule.
    let shape = small_shape();
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 1);
    let pinned = pinned_schedule(&ndirect_platform::host(), &shape, 2);
    let plan = ConvPlan::try_with_schedule(&shape, &filter, &pinned).expect("plan");
    let pool = StaticPool::new(2);
    let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
    plan.execute(&pool, &input(9), &mut out).expect("reference");
    assert_eq!(resp.output.as_slice(), out.as_slice(), "bitwise across worker death");
    assert_eq!(server.stats().worker_deaths, 1, "death detected and healed");
    server.shutdown();
}

#[test]
fn graceful_drain_completes_admitted_requests() {
    let faults = Arc::new(Faults::new());
    faults.stall_queue_once_ms(30);
    let server =
        Server::with_faults(quick_config(), vec![model_def(1)], Arc::clone(&faults)).expect("server");
    let tickets: Vec<_> = (0..6)
        .map(|i| server.submit(MODEL, input(i), None).expect("submit"))
        .collect();
    server.shutdown(); // returns only once the pipeline drained
    for (i, t) in tickets.into_iter().enumerate() {
        let resp = t
            .wait_timeout(Duration::from_secs(5))
            .unwrap_or_else(|_| panic!("ticket {i} stranded after shutdown"))
            .expect("admitted request completed, not dropped");
        assert_eq!(resp.output.as_slice(), reference(1, i as u64).as_slice());
    }
}

#[test]
fn config_validation_is_typed() {
    for (config, needle) in [
        (ServeConfig { queue_capacity: 0, ..ServeConfig::default() }, "queue_capacity"),
        (ServeConfig { high_water: 0, ..ServeConfig::default() }, "high_water"),
        (ServeConfig { max_batch: 0, ..ServeConfig::default() }, "max_batch"),
        (ServeConfig { shards: 0, ..ServeConfig::default() }, "shards"),
        (ServeConfig { threads_per_shard: 0, ..ServeConfig::default() }, "threads_per_shard"),
    ] {
        match Server::try_new(config, vec![model_def(1)]) {
            Err(ServeError::Config { msg }) => assert!(msg.contains(needle), "{msg} vs {needle}"),
            Ok(_) => panic!("invalid config accepted ({needle})"),
            Err(e) => panic!("expected Config error, got {e}"),
        }
    }
    // Non-unit model signature.
    let mut bad = model_def(1);
    bad.shape = ConvShape { n: 2, ..bad.shape };
    assert!(matches!(
        Server::try_new(quick_config(), vec![bad]),
        Err(ServeError::Config { .. })
    ));
}

// ---------------------------------------------------------------------------
// Table-driven deadline semantics (ISSUE 6 satellite 3)
// ---------------------------------------------------------------------------

/// What a deadline scenario must produce.
enum Expect {
    /// (a) Refused at submit, no queue slot, no plan touched.
    ShedOnArrival,
    /// (b) Admitted, then cancelled in-queue before dispatch.
    CancelledInQueue,
    /// (c) Dispatched before expiry: the in-flight batch is never
    /// cancelled; the result arrives past the deadline flagged late.
    LateDelivery,
}

struct DeadlineCase {
    name: &'static str,
    /// Deadline offset from submit time; negative = already expired.
    deadline_ms: i64,
    /// Batcher stall armed before the submit (keeps the request queued
    /// past its deadline).
    stall_queue_ms: u64,
    /// Kernel slowdown (keeps the request in flight past its deadline).
    slow_kernel_ms: u64,
    expect: Expect,
}

const DEADLINE_CASES: &[DeadlineCase] = &[
    DeadlineCase {
        name: "expired_on_arrival_is_shed_without_touching_a_plan",
        deadline_ms: -10,
        stall_queue_ms: 0,
        slow_kernel_ms: 0,
        expect: Expect::ShedOnArrival,
    },
    DeadlineCase {
        name: "mid_queue_expiry_cancels_before_dispatch",
        deadline_ms: 20,
        stall_queue_ms: 120,
        slow_kernel_ms: 0,
        expect: Expect::CancelledInQueue,
    },
    DeadlineCase {
        name: "in_flight_batch_is_never_cancelled_result_is_flagged_late",
        deadline_ms: 250,
        stall_queue_ms: 0,
        slow_kernel_ms: 600,
        expect: Expect::LateDelivery,
    },
];

#[test]
fn deadline_semantics_table() {
    for case in DEADLINE_CASES {
        let faults = Arc::new(Faults::new());
        if case.stall_queue_ms > 0 {
            faults.stall_queue_once_ms(case.stall_queue_ms);
        }
        if case.slow_kernel_ms > 0 {
            faults.slow_kernels_ms(case.slow_kernel_ms);
        }
        let server = Server::with_faults(quick_config(), vec![model_def(1)], Arc::clone(&faults))
            .unwrap_or_else(|e| panic!("{}: server: {e}", case.name));
        let plans_before = server.planned_plans();
        let deadline = if case.deadline_ms < 0 {
            Instant::now() - Duration::from_millis(case.deadline_ms.unsigned_abs())
        } else {
            Instant::now() + Duration::from_millis(case.deadline_ms as u64)
        };
        let submitted = server.submit(MODEL, input(42), Some(deadline));

        match case.expect {
            Expect::ShedOnArrival => {
                match submitted {
                    Err(e @ ServeError::DeadlineExpired { at: ExpiredAt::Arrival }) => {
                        assert!(!e.is_retryable(), "{}", case.name)
                    }
                    other => panic!("{}: expected arrival shed, got {:?}", case.name, other.map(|t| t.id())),
                }
                let stats = server.stats();
                assert_eq!(stats.enqueued, 0, "{}: never queued", case.name);
                assert_eq!(stats.shed, 1, "{}", case.name);
                assert_eq!(stats.batches, 0, "{}: nothing dispatched", case.name);
                assert_eq!(
                    server.planned_plans(),
                    plans_before,
                    "{}: no plan touched",
                    case.name
                );
            }
            Expect::CancelledInQueue => {
                let ticket = submitted.unwrap_or_else(|e| panic!("{}: admitted: {e}", case.name));
                match ticket.wait_timeout(Duration::from_secs(5)) {
                    Ok(Err(e @ ServeError::DeadlineExpired { at: ExpiredAt::Queue })) => {
                        assert!(e.is_retryable(), "{}", case.name)
                    }
                    Ok(other) => panic!("{}: expected queue expiry, got {:?}", case.name, other.map(|r| r.batch)),
                    Err(_) => panic!("{}: ticket stranded", case.name),
                }
                let stats = server.stats();
                assert_eq!(stats.deadline_misses, 1, "{}", case.name);
                assert_eq!(stats.batches, 0, "{}: cancelled before dispatch", case.name);
            }
            Expect::LateDelivery => {
                let ticket = submitted.unwrap_or_else(|e| panic!("{}: admitted: {e}", case.name));
                let resp = match ticket.wait_timeout(Duration::from_secs(8)) {
                    Ok(Ok(resp)) => resp,
                    Ok(Err(e)) => panic!("{}: in-flight request failed: {e}", case.name),
                    Err(_) => panic!("{}: ticket stranded", case.name),
                };
                assert!(resp.late, "{}: must be flagged late", case.name);
                assert_eq!(
                    resp.output.as_slice(),
                    reference(1, 42).as_slice(),
                    "{}: late result still bitwise correct",
                    case.name
                );
                let stats = server.stats();
                assert_eq!(stats.completed, 1, "{}", case.name);
                assert!(stats.deadline_misses >= 1, "{}", case.name);
            }
        }
        server.shutdown();
    }
}

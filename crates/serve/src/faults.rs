//! Deterministic fault injection for the serving pipeline.
//!
//! [`Faults`] is a budget sheet of faults to inject at fixed, named points
//! of the pipeline (plan build, batch execute, batcher pop, submit). Each
//! fault is armed by the test as a countdown; the pipeline consumes one
//! unit per injection point, so a test that arms `refuse_next_allocs(2)`
//! knows *exactly* which two plan builds will see a refused allocation —
//! no randomness, no timing dependence.
//!
//! Only compiled under `cfg(any(test, feature = "chaos"))`; release
//! builds without the `chaos` feature carry none of these branches (the
//! [`crate::server`] hooks compile to constant `false`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// A countdown budget of injectable faults, shared with a server via
/// [`crate::Server::with_faults`]. All methods are callable concurrently
/// with serving traffic.
#[derive(Debug, Default)]
pub struct Faults {
    refuse_allocs: AtomicUsize,
    panic_batches: AtomicUsize,
    kill_workers: AtomicUsize,
    poison_submits: AtomicUsize,
    slow_kernel_ms: AtomicU64,
    stall_queue_ms: AtomicU64,
    injected: AtomicUsize,
}

impl Faults {
    /// A sheet with every budget at zero (no faults fire).
    pub fn new() -> Self {
        Self::default()
    }

    /// The next `n` plan builds report a refused scratch allocation
    /// (`Error::ScratchAlloc`), exercising retry-with-backoff and, once
    /// retries are exhausted, the minimal-schedule degradation path.
    pub fn refuse_next_allocs(&self, n: usize) {
        self.refuse_allocs.fetch_add(n, Ordering::AcqRel);
    }

    /// The next `n` batch executions panic before touching the kernel,
    /// exercising panic isolation (peers re-run individually).
    pub fn panic_next_batches(&self, n: usize) {
        self.panic_batches.fetch_add(n, Ordering::AcqRel);
    }

    /// Before each of the next `n` batch executions, one pool worker of
    /// the executing shard is killed, exercising eager respawn under
    /// load.
    pub fn kill_worker_before_next_batches(&self, n: usize) {
        self.kill_workers.fetch_add(n, Ordering::AcqRel);
    }

    /// The next `n` *submitted* requests are poisoned: any batch carrying
    /// one panics, and on the isolation re-run only the poisoned request
    /// itself panics — its peers must complete.
    pub fn poison_next_submits(&self, n: usize) {
        self.poison_submits.fetch_add(n, Ordering::AcqRel);
    }

    /// Every batch execution sleeps `ms` milliseconds first (a slow
    /// kernel), until reset to 0. Used to pile up the queue for
    /// backpressure and mid-queue-expiry scenarios.
    pub fn slow_kernels_ms(&self, ms: u64) {
        self.slow_kernel_ms.store(ms, Ordering::Release);
    }

    /// The batcher stalls `ms` milliseconds once before its next pop (a
    /// queue stall). Bounded by construction, so a stall can delay but
    /// never hang the pipeline.
    pub fn stall_queue_once_ms(&self, ms: u64) {
        self.stall_queue_ms.store(ms, Ordering::Release);
    }

    /// How many faults have actually fired so far (tests assert their
    /// injection really happened).
    pub fn injected(&self) -> usize {
        self.injected.load(Ordering::Acquire)
    }

    fn take(&self, budget: &AtomicUsize) -> bool {
        let took = budget
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| v.checked_sub(1))
            .is_ok();
        if took {
            self.injected.fetch_add(1, Ordering::AcqRel);
        }
        took
    }

    pub(crate) fn take_refused_alloc(&self) -> bool {
        self.take(&self.refuse_allocs)
    }

    pub(crate) fn take_panic_batch(&self) -> bool {
        self.take(&self.panic_batches)
    }

    pub(crate) fn take_kill_worker(&self) -> bool {
        self.take(&self.kill_workers)
    }

    pub(crate) fn take_poison_submit(&self) -> bool {
        self.take(&self.poison_submits)
    }

    pub(crate) fn kernel_delay(&self) -> Option<Duration> {
        match self.slow_kernel_ms.load(Ordering::Acquire) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    pub(crate) fn take_queue_stall(&self) -> Option<Duration> {
        match self.stall_queue_ms.swap(0, Ordering::AcqRel) {
            0 => None,
            ms => {
                self.injected.fetch_add(1, Ordering::AcqRel);
                Some(Duration::from_millis(ms))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_count_down_to_zero() {
        let f = Faults::new();
        assert!(!f.take_refused_alloc(), "unarmed budget never fires");
        f.refuse_next_allocs(2);
        assert!(f.take_refused_alloc());
        assert!(f.take_refused_alloc());
        assert!(!f.take_refused_alloc(), "budget exhausted");
        assert_eq!(f.injected(), 2);
    }

    #[test]
    fn stall_is_one_shot() {
        let f = Faults::new();
        assert_eq!(f.take_queue_stall(), None);
        f.stall_queue_once_ms(7);
        assert_eq!(f.take_queue_stall(), Some(Duration::from_millis(7)));
        assert_eq!(f.take_queue_stall(), None, "consumed");
    }

    #[test]
    fn slow_kernel_persists_until_reset() {
        let f = Faults::new();
        f.slow_kernels_ms(3);
        assert_eq!(f.kernel_delay(), Some(Duration::from_millis(3)));
        assert_eq!(f.kernel_delay(), Some(Duration::from_millis(3)));
        f.slow_kernels_ms(0);
        assert_eq!(f.kernel_delay(), None);
    }
}

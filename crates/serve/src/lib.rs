//! # ndirect-serve — fault-tolerant batching inference front-end
//!
//! A multi-worker serving engine over the allocation-free
//! [`ndirect_core::ConvPlan`] layer (DESIGN.md §13). Clients
//! [`Server::submit`] single-sample requests with optional deadlines; a
//! batcher coalesces same-model requests into larger-`N` batches — the
//! throughput lever of both source papers — and dispatches them to worker
//! shards that share per-model plan registries.
//!
//! Robustness is the contract, not an afterthought:
//!
//! * **Deadlines with cancellation** — a request whose deadline expires
//!   before dispatch is cancelled and never occupies a kernel slot;
//!   results that miss their deadline mid-kernel are delivered flagged
//!   [`InferResponse::late`] (in-flight batches are never cancelled).
//! * **Admission control** — past the queue's high-water mark, submits
//!   shed with [`ServeError::Overloaded`] carrying a measured
//!   `retry_after` hint.
//! * **Retry, then degrade** — transient faults (scratch refusal, worker
//!   respawn window) get bounded retry-with-backoff, then the
//!   minimal-schedule degraded plan; only when even that fails does the
//!   request error with [`ServeError::RetriesExhausted`].
//! * **Panic isolation** — a batch whose kernel panics is re-run one
//!   request at a time: the poisoned request alone fails with
//!   [`ServeError::WorkerPanicked`], its peers complete bitwise
//!   identically to the batched run (the per-model *pinned schedule*
//!   fixes the tile parameters, and with them the accumulation order,
//!   across every batch size).
//! * **Graceful drain** — [`Server::shutdown`] stops admitting,
//!   completes everything admitted, and joins the pipeline; no ticket is
//!   ever stranded.
//!
//! Every failure mode is a typed [`ServeError`] with
//! [`ServeError::is_retryable`] / [`ServeError::retry_after`], and the
//! deterministic fault-injection sheet (`faults::Faults`, compiled
//! under `cfg(any(test, feature = "chaos"))`) lets the chaos suite prove
//! the mapping fault-by-fault.
//!
//! ```no_run
//! use std::time::Duration;
//! use ndirect_serve::{ModelDef, ServeConfig, Server};
//! use ndirect_tensor::{fill, ConvShape, Filter, FilterLayout, Tensor4, ActLayout};
//!
//! let shape = ConvShape::square(1, 64, 64, 28, 3, 1);
//! let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 1);
//! let server = Server::try_new(
//!     ServeConfig::default(),
//!     vec![ModelDef { name: "resnet-3b".into(), shape, filter }],
//! )?;
//! let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 7);
//! let ticket = server.submit_within("resnet-3b", input, Duration::from_millis(50))?;
//! let response = ticket.wait()?;
//! assert!(!response.late);
//! # Ok::<(), ndirect_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
#[cfg(any(test, feature = "chaos"))]
pub mod faults;
mod metrics;
mod queue;
mod server;
mod ticket;

pub use error::{ExpiredAt, ServeError};
pub use metrics::METRIC_CATALOG;
pub use server::{pinned_schedule, ModelDef, ServeConfig, ServeStats, Server};
pub use ticket::{InferResponse, Ticket};

#[cfg(test)]
mod tests;

//! The serving telemetry plane (DESIGN.md §16): always-on per-stage
//! latency histograms, fault counters, and backpressure gauges, per model
//! and aggregate, registered in a [`MetricsRegistry`] so one snapshot
//! serializes everything as JSON or Prometheus text.
//!
//! Everything here records unconditionally — an inference server that
//! cannot report its own p99 is not operable — while the Chrome-trace
//! span emission for the same stage transitions stays behind the `probe`
//! feature (see `server.rs`, which calls `ndirect_probe::record_span`
//! next to each histogram record).
//!
//! Stage model (one request's life, each bounded by [`ndirect_probe::now_ns`]
//! timestamps carried on the `Pending`):
//!
//! ```text
//! submit ──admission──▶ taken by batcher ──linger──▶ batch formed
//!        ──dispatch──▶ shard picks it up ──execute──▶ kernel done
//!        ──delivery──▶ ticket resolved          (latency = the sum)
//! ```

use std::sync::Arc;
use std::time::Duration;

use ndirect_probe::metrics::{
    Counter, Gauge, LogHistogram, MetricsRegistry, MetricsSnapshot, RateWindow,
};

/// Every metric family the serving plane registers, by name; the CI
/// telemetry step and `servestat --check` assert that a snapshot carries
/// all of them. Types and units are catalogued in DESIGN.md §16.
pub const METRIC_CATALOG: &[&str] = &[
    // Counters (per model and aggregate).
    "serve_enqueued_total",
    "serve_shed_total",
    "serve_shed_overload_total",
    "serve_expired_arrival_total",
    "serve_expired_queue_total",
    "serve_late_total",
    "serve_completed_total",
    "serve_failed_total",
    "serve_retries_total",
    "serve_degraded_total",
    "serve_panics_total",
    "serve_batches_total",
    "serve_batched_requests_total",
    // Gauges (aggregate).
    "serve_queue_depth",
    "serve_queue_high_water",
    "serve_completed_rps",
    "serve_shed_rps",
    // Histograms (per model and aggregate; `_ns` families in nanoseconds).
    "serve_stage_admission_ns",
    "serve_stage_linger_ns",
    "serve_stage_dispatch_ns",
    "serve_stage_execute_ns",
    "serve_stage_delivery_ns",
    "serve_latency_ns",
    "serve_service_ns",
    "serve_batch_size",
];

/// One label scope's worth of handles: either the unlabeled aggregate or
/// one `model="<name>"` slice. Counters and histograms are bumped in
/// pairs via [`ServeMetrics::sets`].
pub(crate) struct ModelSet {
    // Admission and outcome counters.
    pub(crate) enqueued: Arc<Counter>,
    /// All admission refusals (overload + expired-on-arrival + draining).
    pub(crate) shed: Arc<Counter>,
    pub(crate) shed_overload: Arc<Counter>,
    pub(crate) expired_arrival: Arc<Counter>,
    pub(crate) expired_queue: Arc<Counter>,
    pub(crate) late: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) failed: Arc<Counter>,
    pub(crate) retries: Arc<Counter>,
    pub(crate) degraded: Arc<Counter>,
    pub(crate) panics: Arc<Counter>,
    pub(crate) batches: Arc<Counter>,
    pub(crate) batched_requests: Arc<Counter>,
    // Per-stage latency attribution.
    pub(crate) stage_admission: Arc<LogHistogram>,
    pub(crate) stage_linger: Arc<LogHistogram>,
    pub(crate) stage_dispatch: Arc<LogHistogram>,
    pub(crate) stage_execute: Arc<LogHistogram>,
    pub(crate) stage_delivery: Arc<LogHistogram>,
    /// End-to-end submit → ticket resolution.
    pub(crate) latency: Arc<LogHistogram>,
    /// Per-request share of batch execution (execute / batch size); its
    /// p99 feeds the `Overloaded::retry_after` hint.
    pub(crate) service: Arc<LogHistogram>,
    pub(crate) batch_size: Arc<LogHistogram>,
}

impl ModelSet {
    fn register(reg: &MetricsRegistry, labels: &[(&str, &str)]) -> ModelSet {
        let c = |name: &str, help: &str| reg.counter(name, help, labels);
        let h = |name: &str, help: &str| reg.histogram(name, help, labels);
        ModelSet {
            enqueued: c("serve_enqueued_total", "requests admitted into the queue"),
            shed: c(
                "serve_shed_total",
                "requests refused admission (overload, arrival-expired, draining)",
            ),
            shed_overload: c(
                "serve_shed_overload_total",
                "requests refused for queue pressure (high-water mark)",
            ),
            expired_arrival: c(
                "serve_expired_arrival_total",
                "requests whose deadline had already passed at submit",
            ),
            expired_queue: c(
                "serve_expired_queue_total",
                "admitted requests cancelled by the queue deadline sweep",
            ),
            late: c(
                "serve_late_total",
                "results delivered after their deadline (flagged, not dropped)",
            ),
            completed: c("serve_completed_total", "requests resolved with a result"),
            failed: c("serve_failed_total", "requests resolved with an error after admission"),
            retries: c("serve_retries_total", "transient-failure retries performed"),
            degraded: c(
                "serve_degraded_total",
                "requests answered by the minimal-schedule degraded plan",
            ),
            panics: c(
                "serve_panics_total",
                "requests that panicked the kernel and were isolated",
            ),
            batches: c("serve_batches_total", "batches dispatched to shards"),
            batched_requests: c(
                "serve_batched_requests_total",
                "requests carried inside dispatched batches",
            ),
            stage_admission: h(
                "serve_stage_admission_ns",
                "submit to batcher take (queue wait), nanoseconds",
            ),
            stage_linger: h(
                "serve_stage_linger_ns",
                "batcher take to batch formed (coalescing linger), nanoseconds",
            ),
            stage_dispatch: h(
                "serve_stage_dispatch_ns",
                "batch formed to shard pickup (dispatch queue), nanoseconds",
            ),
            stage_execute: h(
                "serve_stage_execute_ns",
                "plan execution wall time of the request's batch, nanoseconds",
            ),
            stage_delivery: h(
                "serve_stage_delivery_ns",
                "kernel done to ticket resolved (scatter + wake), nanoseconds",
            ),
            latency: h("serve_latency_ns", "end-to-end submit to delivery, nanoseconds"),
            service: h(
                "serve_service_ns",
                "per-request share of batch execution, nanoseconds (p99 feeds retry_after)",
            ),
            batch_size: h("serve_batch_size", "requests coalesced per dispatched batch"),
        }
    }
}

/// All of a server's metric handles plus the registry they live in.
pub(crate) struct ServeMetrics {
    registry: MetricsRegistry,
    pub(crate) aggregate: ModelSet,
    pub(crate) models: Vec<ModelSet>,
    /// Submit-queue depth at the last observation point.
    pub(crate) queue_depth: Arc<Gauge>,
    /// Highest depth any push observed (high-water mark).
    pub(crate) queue_high_water: Arc<Gauge>,
    pub(crate) completed_rps: Arc<RateWindow>,
    pub(crate) shed_rps: Arc<RateWindow>,
}

impl ServeMetrics {
    pub(crate) fn new(model_names: &[&str]) -> ServeMetrics {
        let registry = MetricsRegistry::new();
        let aggregate = ModelSet::register(&registry, &[]);
        let models = model_names
            .iter()
            .map(|name| ModelSet::register(&registry, &[("model", name)]))
            .collect();
        let queue_depth = registry.gauge(
            "serve_queue_depth",
            "submit-queue depth at last observation",
            &[],
        );
        let queue_high_water = registry.gauge(
            "serve_queue_high_water",
            "highest submit-queue depth observed",
            &[],
        );
        let completed_rps = registry.rate(
            "serve_completed_rps",
            "completions per second (10 s sliding window)",
            &[],
            10,
        );
        let shed_rps = registry.rate(
            "serve_shed_rps",
            "admission refusals per second (10 s sliding window)",
            &[],
            10,
        );
        ServeMetrics {
            registry,
            aggregate,
            models,
            queue_depth,
            queue_high_water,
            completed_rps,
            shed_rps,
        }
    }

    /// The aggregate scope plus the model's own scope: every counter or
    /// histogram record loops over this pair so per-model and aggregate
    /// views stay consistent by construction.
    pub(crate) fn sets(&self, model: usize) -> [&ModelSet; 2] {
        // INDEX: model indexes were validated against the model table at
        // submission; one ModelSet exists per registered model.
        [&self.aggregate, &self.models[model]]
    }

    /// Snapshots every registered metric.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// Floor of the `Overloaded::retry_after` hint.
pub(crate) const RETRY_AFTER_FLOOR: Duration = Duration::from_millis(1);
/// Ceiling of the `Overloaded::retry_after` hint.
pub(crate) const RETRY_AFTER_CEIL: Duration = Duration::from_secs(2);
/// Assumed per-request service time before any request has completed.
pub(crate) const COLD_SERVICE_NS: u64 = 10_000_000;

/// The measured backoff hint (ISSUE 9 satellite): estimated time for the
/// shards to drain `depth` queued requests at the *measured* p99
/// per-request service time, clamped to `[RETRY_AFTER_FLOOR,
/// RETRY_AFTER_CEIL]`. Three regimes fall out of the clamp:
///
/// * **light** — a shallow queue of fast requests drains in under a
///   millisecond; the floor keeps clients from busy-retrying;
/// * **proportional** — the estimate passes through: `depth · p99 /
///   shards`;
/// * **saturated** — a deep queue of slow requests would take longer than
///   the ceiling; 2 s caps the hint so clients re-probe rather than
///   giving up on a stale estimate.
///
/// `p99_service_ns == 0` (no completion yet) falls back to
/// [`COLD_SERVICE_NS`] per request.
pub(crate) fn retry_hint(depth: usize, shards: usize, p99_service_ns: u64) -> Duration {
    let per_request_ns = if p99_service_ns == 0 {
        COLD_SERVICE_NS
    } else {
        p99_service_ns
    };
    let drain_ns =
        u128::from(per_request_ns) * depth.max(1) as u128 / shards.max(1) as u128;
    Duration::from_nanos(drain_ns.min(u128::from(u64::MAX)) as u64)
        .clamp(RETRY_AFTER_FLOOR, RETRY_AFTER_CEIL)
}

//! The serving layer's slice of the workspace error taxonomy (DESIGN.md
//! §8): every way a request can fail is a typed variant, and callers can
//! programmatically distinguish *retry me later* ([`ServeError::is_retryable`],
//! [`ServeError::retry_after`]) from *your request is wrong* from *the
//! kernel layer refused*.

use std::time::Duration;

/// Where along the pipeline a request's deadline was found expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpiredAt {
    /// Already expired when [`crate::Server::submit`] was called; the
    /// request was refused admission and never touched a queue slot or a
    /// plan.
    Arrival,
    /// Expired while waiting in the submit queue; the batcher cancelled
    /// it before dispatch, so it never occupied a kernel slot.
    Queue,
}

/// Why a serving request failed.
///
/// In-flight batches are never cancelled, so a deadline that expires
/// *after* dispatch is not an error: the completed result is delivered
/// with [`crate::InferResponse::late`] set instead.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control refused the request: the submit queue is past
    /// its high-water mark. Retry after roughly `retry_after` (estimated
    /// from the queue depth and the observed per-request service time).
    Overloaded {
        /// Queue depth at refusal.
        depth: usize,
        /// Suggested client backoff before resubmitting.
        retry_after: Duration,
    },
    /// The request's deadline expired before it reached a worker; see
    /// [`ExpiredAt`] for which stage shed it.
    DeadlineExpired {
        /// Pipeline stage at which the expiry was detected.
        at: ExpiredAt,
    },
    /// The named model was never registered with the server.
    UnknownModel {
        /// The name the request asked for.
        name: String,
    },
    /// The request tensor does not match the model's input signature.
    BadInput {
        /// Which contract was violated.
        context: &'static str,
        /// Dimensions the model expects (`(1, C, H, W)`).
        expected: (usize, usize, usize, usize),
        /// Dimensions the request carried.
        got: (usize, usize, usize, usize),
    },
    /// The kernel panicked on this specific request. Batch peers were
    /// isolated and completed normally; only the poisoned request gets
    /// this error.
    WorkerPanicked,
    /// A transient fault (scratch refusal, worker respawn window)
    /// persisted through every retry *and* the degraded-plan fallback.
    RetriesExhausted {
        /// Build/execute attempts performed (first try included).
        attempts: usize,
        /// The kernel-layer error from the final attempt.
        last: ndirect_core::Error,
    },
    /// The kernel layer refused with a non-transient error (bad schedule,
    /// unsupported ISA, …) that retrying cannot fix.
    Conv(ndirect_core::Error),
    /// The server is draining: no new requests are admitted. Requests
    /// already admitted are still completed.
    ShuttingDown,
    /// The server was misconfigured (zero-capacity queue, no shards,
    /// model with a non-unit batch signature, …). Construction-time only.
    Config {
        /// What was wrong.
        msg: String,
    },
}

impl ServeError {
    /// Whether resubmitting the same request later can succeed:
    /// overload, transient-fault exhaustion, and the queue-expiry flavour
    /// of a deadline miss (a fresh deadline may survive a shorter queue)
    /// are retryable; malformed requests and kernel refusals are not.
    pub fn is_retryable(&self) -> bool {
        match self {
            ServeError::Overloaded { .. }
            | ServeError::RetriesExhausted { .. }
            | ServeError::DeadlineExpired {
                at: ExpiredAt::Queue,
            } => true,
            ServeError::DeadlineExpired {
                at: ExpiredAt::Arrival,
            }
            | ServeError::UnknownModel { .. }
            | ServeError::BadInput { .. }
            | ServeError::WorkerPanicked
            | ServeError::Conv(_)
            | ServeError::ShuttingDown
            | ServeError::Config { .. } => false,
        }
    }

    /// The server's backoff hint, when it gave one ([`ServeError::Overloaded`]).
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ServeError::Overloaded { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, retry_after } => write!(
                f,
                "server overloaded (queue depth {depth}); retry after {retry_after:?}"
            ),
            ServeError::DeadlineExpired { at: ExpiredAt::Arrival } => {
                write!(f, "deadline already expired on arrival; request shed")
            }
            ServeError::DeadlineExpired { at: ExpiredAt::Queue } => {
                write!(f, "deadline expired while queued; cancelled before dispatch")
            }
            ServeError::UnknownModel { name } => write!(f, "unknown model {name:?}"),
            ServeError::BadInput {
                context,
                expected,
                got,
            } => write!(f, "{context}: expected {expected:?}, got {got:?}"),
            ServeError::WorkerPanicked => {
                write!(f, "kernel panicked on this request (batch peers unaffected)")
            }
            ServeError::RetriesExhausted { attempts, last } => {
                write!(f, "transient fault persisted through {attempts} attempts: {last}")
            }
            ServeError::Conv(e) => write!(f, "kernel layer refused: {e}"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Config { msg } => write!(f, "server misconfigured: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Conv(e) | ServeError::RetriesExhausted { last: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<ndirect_core::Error> for ServeError {
    fn from(e: ndirect_core::Error) -> Self {
        ServeError::Conv(e)
    }
}

/// Whether a kernel-layer error is worth retrying at the serving level:
/// scratch refusal clears when concurrent executions release their
/// leases, and a failed worker respawn clears when the OS frees threads.
pub(crate) fn core_error_is_transient(e: &ndirect_core::Error) -> bool {
    matches!(
        e,
        ndirect_core::Error::ScratchAlloc { .. }
            | ndirect_core::Error::Pool(ndirect_threads::PoolError::WorkerSpawn { .. })
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_matrix() {
        let overloaded = ServeError::Overloaded {
            depth: 9,
            retry_after: Duration::from_millis(5),
        };
        assert!(overloaded.is_retryable());
        assert_eq!(overloaded.retry_after(), Some(Duration::from_millis(5)));

        assert!(ServeError::RetriesExhausted {
            attempts: 4,
            last: ndirect_core::Error::ScratchAlloc { elements: 1 },
        }
        .is_retryable());
        assert!(ServeError::DeadlineExpired { at: ExpiredAt::Queue }.is_retryable());

        for terminal in [
            ServeError::DeadlineExpired { at: ExpiredAt::Arrival },
            ServeError::UnknownModel { name: "x".into() },
            ServeError::WorkerPanicked,
            ServeError::ShuttingDown,
            ServeError::Conv(ndirect_core::Error::ScratchAlloc { elements: 1 }),
        ] {
            assert!(!terminal.is_retryable(), "{terminal}");
            assert_eq!(terminal.retry_after(), None);
        }
    }

    #[test]
    fn transience_classification() {
        assert!(core_error_is_transient(&ndirect_core::Error::ScratchAlloc {
            elements: 4
        }));
        assert!(core_error_is_transient(&ndirect_core::Error::Pool(
            ndirect_threads::PoolError::WorkerSpawn {
                worker: 1,
                kind: std::io::ErrorKind::WouldBlock,
            }
        )));
        assert!(!core_error_is_transient(&ndirect_core::Error::Pool(
            ndirect_threads::PoolError::NestedRun
        )));
        assert!(!core_error_is_transient(&ndirect_core::Error::Unsupported {
            what: "test"
        }));
    }

    #[test]
    fn display_is_informative() {
        let s = ServeError::Overloaded {
            depth: 12,
            retry_after: Duration::from_millis(3),
        }
        .to_string();
        assert!(s.contains("overloaded") && s.contains("12"), "{s}");
    }
}

//! The client's handle to an in-flight request.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ndirect_tensor::Tensor4;

use crate::error::ServeError;

/// A completed inference.
#[derive(Debug)]
pub struct InferResponse {
    /// The `(1, K, P, Q)` output tensor for this request.
    pub output: Tensor4,
    /// The request's deadline had passed by the time the result was
    /// delivered. In-flight batches are never cancelled, so a result that
    /// misses its deadline mid-kernel is still computed and delivered —
    /// flagged, not dropped.
    pub late: bool,
    /// The result was computed by the minimal-schedule degraded plan
    /// (transient faults exhausted the retries for the fast plan). Still
    /// a correct convolution, just slower.
    pub degraded: bool,
    /// Size of the batch this request was coalesced into.
    pub batch: usize,
}

/// One-shot result mailbox shared between a [`Ticket`] and the pipeline.
#[derive(Debug, Default)]
pub(crate) struct ResponseSlot {
    state: Mutex<Option<Result<InferResponse, ServeError>>>,
    cv: Condvar,
}

impl ResponseSlot {
    /// Delivers the result. First write wins; a second delivery (e.g. the
    /// drop guard firing after a real resolution) is ignored.
    pub(crate) fn resolve(&self, result: Result<InferResponse, ServeError>) {
        let mut st = lock_unpoisoned(&self.state);
        if st.is_none() {
            *st = Some(result);
            drop(st);
            self.cv.notify_all();
        }
    }

    pub(crate) fn is_resolved(&self) -> bool {
        lock_unpoisoned(&self.state).is_some()
    }

    fn wait(&self) -> Result<InferResponse, ServeError> {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if let Some(result) = st.take() {
                return result;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<InferResponse, ServeError>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if let Some(result) = st.take() {
                return Some(result);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            st = guard;
        }
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The submit-side handle to an admitted request. Dropping the ticket
/// abandons the result (the request still runs to completion).
#[derive(Debug)]
pub struct Ticket {
    pub(crate) slot: Arc<ResponseSlot>,
    pub(crate) id: u64,
}

impl Ticket {
    /// The server-assigned request id (monotonic per server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The request's trace ID: the key its per-stage spans carry in the
    /// Chrome-trace export (the id's low 32 bits).
    pub fn trace_id(&self) -> u32 {
        self.id as u32
    }

    /// Blocks until the pipeline delivers the result.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.slot.wait()
    }

    /// Blocks up to `timeout`; on expiry the ticket is handed back so the
    /// caller can keep waiting (used by the chaos suite's watchdogs).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<InferResponse, ServeError>, Ticket> {
        match self.slot.wait_timeout(timeout) {
            Some(result) => Ok(result),
            None => Err(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_resolution_wins() {
        let slot = Arc::new(ResponseSlot::default());
        slot.resolve(Err(ServeError::WorkerPanicked));
        slot.resolve(Err(ServeError::ShuttingDown));
        let ticket = Ticket { slot, id: 1 };
        assert!(matches!(ticket.wait(), Err(ServeError::WorkerPanicked)));
    }

    #[test]
    fn wait_timeout_returns_ticket_on_expiry() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket { slot: Arc::clone(&slot), id: 2 };
        let ticket = match ticket.wait_timeout(Duration::from_millis(5)) {
            Err(t) => t,
            Ok(r) => panic!("unexpected early result: {r:?}"),
        };
        slot.resolve(Err(ServeError::ShuttingDown));
        assert!(matches!(
            ticket.wait_timeout(Duration::from_secs(5)),
            Ok(Err(ServeError::ShuttingDown))
        ));
    }

    #[test]
    fn wait_unblocks_across_threads() {
        let slot = Arc::new(ResponseSlot::default());
        let ticket = Ticket { slot: Arc::clone(&slot), id: 3 };
        let resolver = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            slot.resolve(Err(ServeError::WorkerPanicked));
        });
        assert!(matches!(ticket.wait(), Err(ServeError::WorkerPanicked)));
        resolver.join().expect("resolver thread");
    }
}

//! The two queues of the pipeline: the bounded submit queue (admission
//! control, deadline sweeping, batch coalescing) and the bounded dispatch
//! channel feeding the worker shards (natural backpressure: a full
//! dispatch channel blocks the batcher, which lets the submit queue fill,
//! which trips the high-water shed).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ndirect_tensor::Tensor4;
use ndirect_threads::CancelToken;

use crate::error::{ExpiredAt, ServeError};
use crate::ticket::ResponseSlot;

pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// An admitted request travelling through the pipeline.
pub(crate) struct Pending {
    /// Mirrors the ticket id (= trace ID); the low 32 bits key this
    /// request's spans in the Chrome trace.
    pub(crate) id: u64,
    pub(crate) model: usize,
    pub(crate) input: Tensor4,
    pub(crate) deadline: Option<Instant>,
    pub(crate) slot: Arc<ResponseSlot>,
    pub(crate) cancel: CancelToken,
    /// Chaos marker: a poisoned request panics the kernel it reaches.
    pub(crate) poison: bool,
    /// Probe-epoch timestamp of admission (`submit`); start of the
    /// admission-wait stage.
    pub(crate) t_submit_ns: u64,
    /// Probe-epoch timestamp at which the batcher took the request off
    /// the queue (0 until then); admission-wait ends and linger begins.
    pub(crate) t_taken_ns: u64,
}

impl Pending {
    pub(crate) fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// Fails the request as expired-in-queue: cancels its token (so a
    /// region that has not dispatched yet is skipped) and resolves the
    /// ticket. Never called once the request is in flight.
    pub(crate) fn expire_in_queue(self) {
        self.cancel.cancel();
        self.slot
            .resolve(Err(ServeError::DeadlineExpired { at: ExpiredAt::Queue }));
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        // Safety net: a request dropped anywhere in the pipeline without a
        // real resolution (shard thread died, server tore down mid-drain)
        // must never strand its ticket in `wait()`.
        if !self.slot.is_resolved() {
            self.slot.resolve(Err(ServeError::ShuttingDown));
        }
    }
}

struct SubmitState {
    requests: VecDeque<Pending>,
    closed: bool,
}

/// The bounded MPMC submit queue. `submit` never blocks: past the
/// high-water mark it sheds with [`ServeError::Overloaded`] instead.
pub(crate) struct SubmitQueue {
    state: Mutex<SubmitState>,
    available: Condvar,
    high_water: usize,
}

/// What `next_batch` produced.
pub(crate) enum BatchPlanOutcome {
    /// A non-empty batch of same-model requests, in submission order.
    Batch(Vec<Pending>),
    /// A sweep expired every queued request and produced no batch; the
    /// caller should record the `expired` count and call again.
    Swept,
    /// Queue closed and fully drained: the batcher should exit.
    Drained,
}

impl SubmitQueue {
    pub(crate) fn new(capacity: usize, high_water: usize) -> Self {
        Self {
            state: Mutex::new(SubmitState {
                requests: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            high_water,
        }
    }

    /// Admission control: refuses when draining or past the high-water
    /// mark; otherwise enqueues and wakes the batcher. Returns the depth
    /// after the push.
    pub(crate) fn push(&self, request: Pending) -> Result<usize, Box<(ServeError, Pending)>> {
        let mut st = lock_unpoisoned(&self.state);
        if st.closed {
            // AUDIT: allow(hotpath-no-alloc) refusal path — boxes the
            // rejected request back to its caller.
            return Err(Box::new((ServeError::ShuttingDown, request)));
        }
        let depth = st.requests.len();
        if depth >= self.high_water {
            // AUDIT: allow(hotpath-no-alloc) refusal path — boxes the
            // rejected request back to its caller.
            return Err(Box::new((
                ServeError::Overloaded {
                    depth,
                    // The caller (server) substitutes its service-time
                    // estimate; this placeholder keeps the type simple.
                    retry_after: Duration::ZERO,
                },
                request,
            )));
        }
        st.requests.push_back(request);
        let depth = st.requests.len();
        drop(st);
        self.available.notify_one();
        Ok(depth)
    }

    pub(crate) fn depth(&self) -> usize {
        lock_unpoisoned(&self.state).requests.len()
    }

    /// Stops admitting; already-queued requests are still drained.
    pub(crate) fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.available.notify_all();
    }

    /// Blocks for work, sweeps expired requests, and coalesces up to
    /// `max_batch` same-model requests (submission order preserved
    /// per-model; other models are left queued). If the first scan finds
    /// fewer than `max_batch`, waits up to `linger` once for stragglers.
    ///
    /// Expired requests are failed here — before dispatch — so they never
    /// occupy a kernel slot; `expired` receives the model index of every
    /// swept request (the caller's per-model expiry accounting).
    pub(crate) fn next_batch(
        &self,
        max_batch: usize,
        linger: Duration,
        expired: &mut Vec<usize>,
    ) -> BatchPlanOutcome {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            // Sweep: fail everything already past its deadline.
            let now = Instant::now();
            // AUDIT: allow(hotpath-no-alloc) per-wakeup sweep buffer,
            // bounded by queue depth; amortized across the batch.
            let mut kept = VecDeque::with_capacity(st.requests.len());
            for r in st.requests.drain(..) {
                if r.expired(now) {
                    // AUDIT: allow(hotpath-no-alloc) expiry bookkeeping,
                    // bounded by the number of swept requests.
                    expired.push(r.model);
                    r.expire_in_queue();
                } else {
                    kept.push_back(r);
                }
            }
            st.requests = kept;

            if let Some(head_model) = st.requests.front().map(|r| r.model) {
                let mut batch = take_matching(&mut st.requests, head_model, max_batch);
                if batch.len() < max_batch && !linger.is_zero() && !st.closed {
                    // One bounded wait for stragglers of the same model.
                    let (guard, _) = self
                        .available
                        .wait_timeout(st, linger)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    st = guard;
                    let now = Instant::now();
                    let room = max_batch - batch.len();
                    let mut extra = take_matching(&mut st.requests, head_model, room);
                    for r in extra.drain(..) {
                        if r.expired(now) {
                            // AUDIT: allow(hotpath-no-alloc) expiry
                            // bookkeeping, bounded by swept requests.
                            expired.push(r.model);
                            r.expire_in_queue();
                        } else {
                            // AUDIT: allow(hotpath-no-alloc) per-batch
                            // control plane, bounded by max_batch.
                            batch.push(r);
                        }
                    }
                }
                return BatchPlanOutcome::Batch(batch);
            }
            if st.closed {
                return BatchPlanOutcome::Drained;
            }
            if !expired.is_empty() {
                // Hand the sweep count back immediately so the caller's
                // deadline-miss accounting stays live even when no batch
                // formed; the caller re-enters to keep waiting.
                return BatchPlanOutcome::Swept;
            }
            st = self
                .available
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Removes up to `limit` requests for `model` from `queue`, preserving
/// relative order of both the taken and the remaining requests. Stamps
/// `t_taken_ns` on everything taken: the admission-wait stage ends here.
fn take_matching(queue: &mut VecDeque<Pending>, model: usize, limit: usize) -> Vec<Pending> {
    let now_ns = ndirect_probe::now_ns();
    // AUDIT: allow(hotpath-no-alloc) per-batch control plane — two
    // buffers bounded by queue depth, amortized across the batch.
    let mut taken = Vec::new();
    // AUDIT: allow(hotpath-no-alloc) same bound as `taken` above.
    let mut rest = VecDeque::with_capacity(queue.len());
    for mut r in queue.drain(..) {
        if r.model == model && taken.len() < limit {
            r.t_taken_ns = now_ns;
            // AUDIT: allow(hotpath-no-alloc) bounded by `limit` ≤ max_batch.
            taken.push(r);
        } else {
            rest.push_back(r);
        }
    }
    *queue = rest;
    taken
}

/// A coalesced unit of work headed for a shard.
pub(crate) struct Batch {
    pub(crate) model: usize,
    pub(crate) requests: Vec<Pending>,
    /// Probe-epoch timestamp at which the batcher sealed the batch; the
    /// linger stage ends and the dispatch-queue stage begins.
    pub(crate) t_formed_ns: u64,
}

struct DispatchState {
    batches: VecDeque<Batch>,
    closed: bool,
}

/// Bounded SPMC channel between the batcher and the shards.
pub(crate) struct Dispatch {
    state: Mutex<DispatchState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl Dispatch {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(DispatchState {
                batches: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Blocks while full (backpressure onto the batcher). A batch pushed
    /// after close is dropped — its `Pending` drop guards resolve the
    /// tickets as `ShuttingDown` — but in the orderly drain the batcher
    /// is the only closer, so this does not happen in practice.
    pub(crate) fn push(&self, batch: Batch) {
        let mut st = lock_unpoisoned(&self.state);
        while st.batches.len() >= self.capacity && !st.closed {
            st = self
                .not_full
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if !st.closed {
            st.batches.push_back(batch);
            drop(st);
            self.not_empty.notify_one();
        }
    }

    /// Blocks for the next batch; `None` once closed and drained.
    pub(crate) fn pop(&self) -> Option<Batch> {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if let Some(batch) = st.batches.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    pub(crate) fn close(&self) {
        lock_unpoisoned(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::ActLayout;

    fn pending(id: u64, model: usize, deadline: Option<Instant>) -> Pending {
        Pending {
            id,
            model,
            input: Tensor4::zeros(1, 1, 1, 1, ActLayout::Nchw),
            deadline,
            slot: Arc::new(ResponseSlot::default()),
            cancel: CancelToken::new(),
            poison: false,
            t_submit_ns: ndirect_probe::now_ns(),
            t_taken_ns: 0,
        }
    }

    #[test]
    fn high_water_sheds() {
        let q = SubmitQueue::new(4, 2);
        assert!(q.push(pending(1, 0, None)).is_ok());
        assert!(q.push(pending(2, 0, None)).is_ok());
        match q.push(pending(3, 0, None)).map_err(|rejected| rejected.0) {
            Err(ServeError::Overloaded { depth, .. }) => assert_eq!(depth, 2),
            Err(other) => panic!("expected Overloaded, got {other:?}"),
            Ok(_) => panic!("expected Overloaded, got admission"),
        }
    }

    #[test]
    fn closed_queue_refuses() {
        let q = SubmitQueue::new(4, 4);
        q.close();
        assert!(matches!(
            q.push(pending(1, 0, None)).map_err(|rejected| rejected.0),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn coalesces_same_model_and_preserves_other_models() {
        let q = SubmitQueue::new(8, 8);
        for (id, model) in [(1, 0), (2, 1), (3, 0), (4, 0)] {
            q.push(pending(id, model, None)).map_err(|_| ()).expect("push");
        }
        let mut expired = Vec::new();
        match q.next_batch(8, Duration::ZERO, &mut expired) {
            BatchPlanOutcome::Batch(batch) => {
                assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 3, 4]);
                assert!(batch.iter().all(|r| r.t_taken_ns >= r.t_submit_ns));
            }
            BatchPlanOutcome::Swept | BatchPlanOutcome::Drained => panic!("queue has work"),
        }
        assert_eq!(q.depth(), 1, "model-1 request stays queued");
        match q.next_batch(8, Duration::ZERO, &mut expired) {
            BatchPlanOutcome::Batch(batch) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].id, 2);
            }
            BatchPlanOutcome::Swept | BatchPlanOutcome::Drained => panic!("model-1 request pending"),
        }
        assert!(expired.is_empty());
    }

    #[test]
    fn batch_respects_max_batch() {
        let q = SubmitQueue::new(8, 8);
        for id in 1..=5 {
            q.push(pending(id, 0, None)).map_err(|_| ()).expect("push");
        }
        let mut expired = Vec::new();
        match q.next_batch(2, Duration::ZERO, &mut expired) {
            BatchPlanOutcome::Batch(batch) => {
                assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2]);
            }
            BatchPlanOutcome::Swept | BatchPlanOutcome::Drained => panic!("queue has work"),
        }
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn expired_requests_swept_before_dispatch() {
        let q = SubmitQueue::new(8, 8);
        let past = Instant::now() - Duration::from_millis(1);
        let dead = pending(1, 0, Some(past));
        let dead_slot = Arc::clone(&dead.slot);
        q.push(dead).map_err(|_| ()).expect("push");
        q.push(pending(2, 0, None)).map_err(|_| ()).expect("push");
        let mut expired = Vec::new();
        match q.next_batch(8, Duration::ZERO, &mut expired) {
            BatchPlanOutcome::Batch(batch) => {
                assert_eq!(batch.len(), 1);
                assert_eq!(batch[0].id, 2, "only the live request dispatches");
            }
            BatchPlanOutcome::Swept | BatchPlanOutcome::Drained => panic!("live request pending"),
        }
        assert_eq!(expired, vec![0], "sweep reports the expired request's model");
        assert!(dead_slot.is_resolved(), "expired ticket resolved at sweep");
    }

    #[test]
    fn drained_after_close() {
        let q = SubmitQueue::new(4, 4);
        q.push(pending(1, 0, None)).map_err(|_| ()).expect("push");
        q.close();
        let mut expired = Vec::new();
        assert!(matches!(
            q.next_batch(8, Duration::ZERO, &mut expired),
            BatchPlanOutcome::Batch(_)
        ));
        assert!(matches!(
            q.next_batch(8, Duration::ZERO, &mut expired),
            BatchPlanOutcome::Drained
        ));
    }

    #[test]
    fn dispatch_backpressure_and_close() {
        let d = Arc::new(Dispatch::new(1));
        d.push(Batch { model: 0, requests: vec![], t_formed_ns: 0 });
        // Second push blocks until a pop frees the slot.
        let d2 = Arc::clone(&d);
        let pusher = std::thread::spawn(move || {
            d2.push(Batch { model: 1, requests: vec![], t_formed_ns: 0 });
        });
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(d.pop().map(|b| b.model), Some(0));
        pusher.join().expect("pusher");
        assert_eq!(d.pop().map(|b| b.model), Some(1));
        d.close();
        assert!(d.pop().is_none());
    }

    #[test]
    fn dropped_pending_resolves_its_ticket() {
        let p = pending(9, 0, None);
        let slot = Arc::clone(&p.slot);
        drop(p);
        assert!(slot.is_resolved(), "drop guard fired");
    }
}

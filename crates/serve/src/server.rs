//! The serving engine: admission → batcher → shard executors.
//!
//! ```text
//!  clients ──submit()──▶ [ SubmitQueue ]──batcher──▶ [ Dispatch ]──▶ shard 0 (StaticPool)
//!            (shed at      bounded MPMC   coalesces    bounded        shard 1 (StaticPool)
//!             high water)                 same-model    (backpressure)   …
//! ```
//!
//! The batcher coalesces same-model requests into larger-`N` batches —
//! the throughput lever both source papers pull — and the pinned
//! per-model schedule guarantees each sample of a batched execution is
//! bitwise identical to its `N = 1` execution, so batching is purely a
//! performance decision, never a numerics one.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ndirect_core::{ConvPlan, PlanKey, PlanRegistry, Schedule};
use ndirect_platform::Platform;
use ndirect_tensor::{ActLayout, ConvShape, Filter, Tensor4};
use ndirect_threads::{CancelToken, StaticPool};

use crate::error::{core_error_is_transient, ExpiredAt, ServeError};
use crate::queue::{Batch, BatchPlanOutcome, Dispatch, Pending, SubmitQueue};
use crate::ticket::{InferResponse, ResponseSlot, Ticket};

/// Registry tag of the pinned fast plan ([`pinned_schedule`]).
const TAG_PINNED: u64 = 0;
/// Registry tag of the minimal-schedule degraded fallback plan.
const TAG_DEGRADED: u64 = 1;

/// The schedule a server pins for a model: derived once from the model's
/// `N = 1` shape, filter pre-transformed. Every batch size executes under
/// these exact tile parameters, which is what makes per-sample results
/// bitwise identical across batch compositions (the per-output-element
/// accumulation order over `(c, r, s)` is fixed by the tiles, and rows
/// are independent). Public so test suites can build reference plans.
pub fn pinned_schedule(platform: &Platform, shape1: &ConvShape, threads: usize) -> Schedule {
    Schedule::derive(platform, shape1, threads)
        .with_filter_state(ndirect_core::FilterState::PreTransformed)
}

/// Serving-engine knobs. [`ServeConfig::default`] is sized for tests and
/// small deployments; `servebench` overrides per experiment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Submit-queue allocation (upper bound on queued requests).
    pub queue_capacity: usize,
    /// Admission control: submissions are shed with
    /// [`ServeError::Overloaded`] while the queue holds this many.
    pub high_water: usize,
    /// Most requests coalesced into one batch.
    pub max_batch: usize,
    /// Worker shard threads (each owns a [`StaticPool`]).
    pub shards: usize,
    /// [`StaticPool`] size per shard.
    pub threads_per_shard: usize,
    /// Transient-failure retries before degrading to the minimal plan.
    pub max_retries: usize,
    /// Backoff before retry `k` is `retry_backoff · 2^(k−1)`.
    pub retry_backoff: Duration,
    /// How long the batcher waits for same-model stragglers when a batch
    /// forms below `max_batch`. Zero disables lingering.
    pub batch_linger: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            high_water: 896,
            max_batch: 8,
            shards: 2,
            threads_per_shard: 1,
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            batch_linger: Duration::from_micros(200),
        }
    }
}

/// A model registered with the server: a name, its `N = 1` input shape,
/// and its frozen weights.
pub struct ModelDef {
    /// Name clients submit against.
    pub name: String,
    /// The single-request convolution shape (`n` must be 1).
    pub shape: ConvShape,
    /// Frozen weights (`KCRS`). The server keys plans on this buffer's
    /// identity; it must not be mutated for the server's lifetime.
    pub filter: Filter,
}

/// A registered model with its pinned schedule and plan registry.
struct Model {
    shape1: ConvShape,
    filter: Filter,
    pinned: Schedule,
    registry: PlanRegistry,
}

impl Model {
    fn batch_shape(&self, nb: usize) -> ConvShape {
        ConvShape { n: nb, ..self.shape1 }
    }
}

/// Fault-injection hook compiled to constant no-ops unless testing or the
/// `chaos` feature is on.
#[derive(Clone, Default)]
struct FaultHook {
    #[cfg(any(test, feature = "chaos"))]
    sheet: Option<Arc<crate::faults::Faults>>,
}

impl FaultHook {
    fn refused_alloc(&self) -> bool {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().is_some_and(|f| f.take_refused_alloc())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            false
        }
    }

    fn panic_batch(&self) -> bool {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().is_some_and(|f| f.take_panic_batch())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            false
        }
    }

    fn kill_worker(&self) -> bool {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().is_some_and(|f| f.take_kill_worker())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            false
        }
    }

    fn poison_submit(&self) -> bool {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().is_some_and(|f| f.take_poison_submit())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            false
        }
    }

    fn kernel_delay(&self) -> Option<Duration> {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().and_then(|f| f.kernel_delay())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            None
        }
    }

    fn queue_stall(&self) -> Option<Duration> {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().and_then(|f| f.take_queue_stall())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            None
        }
    }
}

/// Server-local counters (always on, independent of the probe feature).
#[derive(Default)]
struct Stats {
    enqueued: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadline_misses: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    retries: AtomicU64,
    degraded: AtomicU64,
    isolated_panics: AtomicU64,
}

/// A point-in-time snapshot of the server's health counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub enqueued: u64,
    /// Requests refused admission (overload, arrival-expired, draining).
    pub shed: u64,
    /// Requests resolved with a result.
    pub completed: u64,
    /// Requests resolved with an error after admission.
    pub failed: u64,
    /// Deadlines missed after admission (cancelled in queue + delivered
    /// late).
    pub deadline_misses: u64,
    /// Batches dispatched to shards.
    pub batches: u64,
    /// Requests carried inside dispatched batches.
    pub batched_requests: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Requests answered by the degraded minimal-schedule plan.
    pub degraded: u64,
    /// Requests that panicked and were isolated from their batch peers.
    pub isolated_panics: u64,
    /// Current submit-queue depth.
    pub queue_depth: usize,
    /// Worker deaths detected (and healed) across all shard pools.
    pub worker_deaths: usize,
}

struct ServerInner {
    config: ServeConfig,
    models: Vec<Model>,
    by_name: HashMap<String, usize>,
    queue: SubmitQueue,
    dispatch: Dispatch,
    stats: Stats,
    /// EWMA of per-request service time in nanoseconds (0 = no sample
    /// yet); feeds the `retry_after` hint on shed.
    ewma_ns: AtomicU64,
    next_id: AtomicU64,
    faults: FaultHook,
}

impl ServerInner {
    fn observe_service_time(&self, batch_elapsed: Duration, nb: usize) {
        let sample = (batch_elapsed.as_nanos() / nb.max(1) as u128) as u64;
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            ((u128::from(old) * 7 + u128::from(sample)) / 8) as u64
        };
        self.ewma_ns.store(new, Ordering::Relaxed);
    }

    fn estimate_retry_after(&self, depth: usize) -> Duration {
        let per_request_ns = match self.ewma_ns.load(Ordering::Relaxed) {
            0 => 10_000_000, // no sample yet: suggest 10 ms
            ns => ns,
        };
        let drain_ns =
            (u128::from(per_request_ns) * depth.max(1) as u128) / self.config.shards.max(1) as u128;
        let drain = Duration::from_nanos(drain_ns.min(u128::from(u64::MAX)) as u64);
        drain.clamp(Duration::from_millis(1), Duration::from_secs(2))
    }
}

/// The multi-worker serving engine. See the [crate docs](crate) for the
/// pipeline and fault model.
pub struct Server {
    inner: Arc<ServerInner>,
    pools: Vec<Arc<StaticPool>>,
    batcher: Option<std::thread::JoinHandle<()>>,
    shards: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Builds a server: validates the config, pins each model's schedule,
    /// eagerly builds every model's `N = 1` plan (so misconfigured models
    /// fail here, not on the first request), spawns the shard pools and
    /// the pipeline threads.
    pub fn try_new(config: ServeConfig, models: Vec<ModelDef>) -> Result<Server, ServeError> {
        Self::build(config, models, FaultHook::default())
    }

    /// [`Server::try_new`] with a fault sheet attached; the chaos suites'
    /// entry point.
    #[cfg(any(test, feature = "chaos"))]
    pub fn with_faults(
        config: ServeConfig,
        models: Vec<ModelDef>,
        faults: Arc<crate::faults::Faults>,
    ) -> Result<Server, ServeError> {
        Self::build(config, models, FaultHook { sheet: Some(faults) })
    }

    fn build(config: ServeConfig, defs: Vec<ModelDef>, faults: FaultHook) -> Result<Server, ServeError> {
        let cfg_err = |msg: String| Err(ServeError::Config { msg });
        if config.queue_capacity == 0 {
            return cfg_err("queue_capacity must be >= 1".into());
        }
        if config.high_water == 0 || config.high_water > config.queue_capacity {
            return cfg_err(format!(
                "high_water must be in 1..={} (got {})",
                config.queue_capacity, config.high_water
            ));
        }
        if config.max_batch == 0 {
            return cfg_err("max_batch must be >= 1".into());
        }
        if config.shards == 0 {
            return cfg_err("shards must be >= 1".into());
        }
        if config.threads_per_shard == 0 {
            return cfg_err("threads_per_shard must be >= 1".into());
        }

        let platform = ndirect_platform::host();
        let mut models = Vec::with_capacity(defs.len());
        let mut by_name = HashMap::with_capacity(defs.len());
        for def in defs {
            if def.shape.n != 1 {
                return cfg_err(format!(
                    "model {:?}: signature shape must have n == 1 (got {})",
                    def.name, def.shape.n
                ));
            }
            if by_name.contains_key(&def.name) {
                return cfg_err(format!("duplicate model name {:?}", def.name));
            }
            let pinned = pinned_schedule(&platform, &def.shape, config.threads_per_shard);
            let model = Model {
                shape1: def.shape,
                filter: def.filter,
                pinned,
                registry: PlanRegistry::new(),
            };
            // Eager N = 1 plan: validates shape/filter/ISA now and makes
            // the first single-request call allocation-free.
            let key = PlanKey::with_tag(&model.shape1, &model.filter, config.threads_per_shard, TAG_PINNED);
            model
                .registry
                .get_or_try_build(key, || {
                    ConvPlan::try_with_schedule(&model.shape1, &model.filter, &model.pinned)
                })
                .map_err(ServeError::Conv)?;
            by_name.insert(def.name, models.len());
            models.push(model);
        }

        let mut pools = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            pools.push(Arc::new(
                StaticPool::try_new(config.threads_per_shard)
                    .map_err(|e| ServeError::Conv(ndirect_core::Error::Pool(e)))?,
            ));
        }

        let dispatch_capacity = config.shards * 2;
        let inner = Arc::new(ServerInner {
            queue: SubmitQueue::new(config.queue_capacity, config.high_water),
            dispatch: Dispatch::new(dispatch_capacity),
            config,
            models,
            by_name,
            stats: Stats::default(),
            ewma_ns: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            faults,
        });

        let spawn_err =
            |e: std::io::Error| ServeError::Config { msg: format!("failed to spawn serving thread: {e}") };
        let batcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ndirect-serve-batcher".into())
                .spawn(move || batcher_loop(&inner))
                .map_err(spawn_err)?
        };
        let mut shards = Vec::with_capacity(pools.len());
        for (i, pool) in pools.iter().enumerate() {
            let inner = Arc::clone(&inner);
            let pool = Arc::clone(pool);
            shards.push(
                std::thread::Builder::new()
                    .name(format!("ndirect-serve-shard-{i}"))
                    .spawn(move || shard_loop(&inner, &pool))
                    .map_err(spawn_err)?,
            );
        }

        Ok(Server { inner, pools, batcher: Some(batcher), shards })
    }

    /// Submits a request against a registered model. `input` is the
    /// `(1, C, H, W)` activation in `NCHW`; `deadline`, if given, sheds
    /// the request once passed (unless it is already mid-kernel — those
    /// results are delivered flagged [`InferResponse::late`]).
    ///
    /// Never blocks: over the high-water mark the request is refused with
    /// [`ServeError::Overloaded`] carrying a backoff hint.
    pub fn submit(
        &self,
        model: &str,
        input: Tensor4,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        let inner = &self.inner;
        let Some(&idx) = inner.by_name.get(model) else {
            return Err(ServeError::UnknownModel { name: model.to_string() });
        };
        let m = &inner.models[idx];
        let expected = (1, m.shape1.c, m.shape1.h, m.shape1.w);
        if input.layout() != ActLayout::Nchw {
            return Err(ServeError::BadInput {
                context: "serving input must be NCHW",
                expected,
                got: input.dims(),
            });
        }
        if input.dims() != expected {
            return Err(ServeError::BadInput {
                context: "input dims",
                expected,
                got: input.dims(),
            });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            inner.stats.shed.fetch_add(1, Ordering::Relaxed);
            ndirect_probe::probe_count!(ServeShed, 1);
            return Err(ServeError::DeadlineExpired { at: ExpiredAt::Arrival });
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ResponseSlot::default());
        let pending = Pending {
            id,
            model: idx,
            input,
            deadline,
            slot: Arc::clone(&slot),
            cancel: CancelToken::new(),
            poison: inner.faults.poison_submit(),
        };
        match inner.queue.push(pending) {
            Ok(_depth) => {
                inner.stats.enqueued.fetch_add(1, Ordering::Relaxed);
                ndirect_probe::probe_count!(ServeEnqueued, 1);
                Ok(Ticket { slot, id })
            }
            Err(boxed) => {
                let (error, rejected) = *boxed;
                // The rejected request never got a ticket; suppress its
                // drop-guard resolution path by resolving explicitly.
                rejected.slot.resolve(Err(error.clone()));
                drop(rejected);
                inner.stats.shed.fetch_add(1, Ordering::Relaxed);
                ndirect_probe::probe_count!(ServeShed, 1);
                Err(match error {
                    ServeError::Overloaded { depth, .. } => ServeError::Overloaded {
                        depth,
                        retry_after: inner.estimate_retry_after(depth),
                    },
                    other => other,
                })
            }
        }
    }

    /// [`Server::submit`] with a relative deadline.
    pub fn submit_within(
        &self,
        model: &str,
        input: Tensor4,
        timeout: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit(model, input, Some(Instant::now() + timeout))
    }

    /// Snapshot of the server's health counters.
    pub fn stats(&self) -> ServeStats {
        let s = &self.inner.stats;
        ServeStats {
            enqueued: s.enqueued.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            failed: s.failed.load(Ordering::Relaxed),
            deadline_misses: s.deadline_misses.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            batched_requests: s.batched_requests.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            degraded: s.degraded.load(Ordering::Relaxed),
            isolated_panics: s.isolated_panics.load(Ordering::Relaxed),
            queue_depth: self.inner.queue.depth(),
            worker_deaths: self.pools.iter().map(|p| p.worker_deaths()).sum(),
        }
    }

    /// Total plans across all model registries (diagnostics: proves shed
    /// requests never triggered a plan build).
    pub fn planned_plans(&self) -> usize {
        self.inner.models.iter().map(|m| m.registry.len()).sum()
    }

    /// Graceful drain: stops admitting, completes everything already
    /// queued or in flight, then joins the pipeline threads.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.inner.queue.close();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        // The batcher closes the dispatch on clean exit; close again
        // defensively in case it died.
        self.inner.dispatch.close();
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn batcher_loop(inner: &Arc<ServerInner>) {
    loop {
        if let Some(stall) = inner.faults.queue_stall() {
            std::thread::sleep(stall);
        }
        let mut expired = 0usize;
        let outcome =
            inner
                .queue
                .next_batch(inner.config.max_batch, inner.config.batch_linger, &mut expired);
        if expired > 0 {
            inner
                .stats
                .deadline_misses
                .fetch_add(expired as u64, Ordering::Relaxed);
            inner.stats.failed.fetch_add(expired as u64, Ordering::Relaxed);
            ndirect_probe::probe_count!(ServeDeadlineMisses, expired as u64);
            ndirect_probe::probe_count!(ServeDequeued, expired as u64);
        }
        match outcome {
            BatchPlanOutcome::Batch(requests) => {
                let n = requests.len() as u64;
                inner.stats.batches.fetch_add(1, Ordering::Relaxed);
                inner.stats.batched_requests.fetch_add(n, Ordering::Relaxed);
                ndirect_probe::probe_count!(ServeDequeued, n);
                ndirect_probe::probe_count!(ServeBatches, 1);
                ndirect_probe::probe_count!(ServeBatchedRequests, n);
                let model = requests[0].model;
                inner.dispatch.push(Batch { model, requests });
            }
            BatchPlanOutcome::Swept => {}
            BatchPlanOutcome::Drained => break,
        }
    }
    inner.dispatch.close();
}

fn shard_loop(inner: &Arc<ServerInner>, pool: &Arc<StaticPool>) {
    while let Some(batch) = inner.dispatch.pop() {
        execute_batch(inner, pool, batch);
    }
}

/// How one batch execution attempt ended.
enum Exec {
    Done,
    Panicked,
    Failed { error: ndirect_core::Error, attempts: usize },
}

fn execute_batch(inner: &Arc<ServerInner>, pool: &Arc<StaticPool>, batch: Batch) {
    let model = &inner.models[batch.model];

    // Defensive: a request cancelled while the batch sat in dispatch was
    // already resolved by its canceller; just drop it (never a kernel
    // slot for a cancelled request).
    let live: Vec<Pending> = batch
        .requests
        .into_iter()
        .filter(|r| !r.cancel.is_cancelled())
        .collect();
    if live.is_empty() {
        return;
    }

    if inner.faults.kill_worker() {
        pool.inject_worker_death();
    }

    let nb = live.len();
    let (plan, degraded) = match acquire_plan(inner, model, nb, pool.size()) {
        Ok(pair) => pair,
        Err(error) => {
            fail_all(inner, live, &error);
            return;
        }
    };

    // Gather: NCHW puts each image contiguous, so batching is a memcpy.
    let shape = model.batch_shape(nb);
    let in_len = model.shape1.c * model.shape1.h * model.shape1.w;
    let out_len = model.shape1.k * model.shape1.p() * model.shape1.q();
    let mut batch_in = Tensor4::zeros(nb, shape.c, shape.h, shape.w, ActLayout::Nchw);
    for (i, r) in live.iter().enumerate() {
        batch_in.as_mut_slice()[i * in_len..(i + 1) * in_len].copy_from_slice(r.input.as_slice());
    }
    let mut batch_out = Tensor4::zeros(nb, shape.k, shape.p(), shape.q(), ActLayout::Nchw);

    let poisoned = live.iter().any(|r| r.poison);
    let started = Instant::now();
    let mut attempts = 0usize;
    let outcome = loop {
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(delay) = inner.faults.kernel_delay() {
                std::thread::sleep(delay);
            }
            if poisoned || inner.faults.panic_batch() {
                panic!("injected kernel poison");
            }
            plan.execute(pool, &batch_in, &mut batch_out)
        }));
        match attempt {
            Err(_) => break Exec::Panicked,
            Ok(Ok(())) => break Exec::Done,
            Ok(Err(e)) if core_error_is_transient(&e) && attempts < inner.config.max_retries => {
                attempts += 1;
                backoff(inner, attempts);
            }
            Ok(Err(e)) => break Exec::Failed { error: e, attempts },
        }
    };

    match outcome {
        Exec::Done => {
            inner.observe_service_time(started.elapsed(), nb);
            for (i, r) in live.into_iter().enumerate() {
                let mut out = Tensor4::zeros(1, shape.k, shape.p(), shape.q(), ActLayout::Nchw);
                out.as_mut_slice()
                    .copy_from_slice(&batch_out.as_slice()[i * out_len..(i + 1) * out_len]);
                deliver(inner, r, out, degraded, nb);
            }
        }
        Exec::Panicked => isolate_batch(inner, pool, batch.model, live),
        Exec::Failed { error, attempts } => {
            let error = if core_error_is_transient(&error) {
                ServeError::RetriesExhausted { attempts: attempts + 1, last: error }
            } else {
                ServeError::Conv(error)
            };
            fail_all(inner, live, &error);
        }
    }
}

/// Panic isolation: re-run each request of a panicked batch individually
/// under its own `catch_unwind`, so one poisoned request fails alone and
/// its peers still complete (bitwise identically to the batched run,
/// thanks to the pinned schedule).
fn isolate_batch(inner: &Arc<ServerInner>, pool: &Arc<StaticPool>, model_idx: usize, live: Vec<Pending>) {
    let model = &inner.models[model_idx];
    let (plan, degraded) = match acquire_plan(inner, model, 1, pool.size()) {
        Ok(pair) => pair,
        Err(error) => {
            fail_all(inner, live, &error);
            return;
        }
    };
    let shape = model.shape1;
    for r in live {
        let mut out = Tensor4::zeros(1, shape.k, shape.p(), shape.q(), ActLayout::Nchw);
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if r.poison {
                panic!("injected kernel poison");
            }
            plan.execute(pool, &r.input, &mut out)
        }));
        match attempt {
            Err(_) => {
                inner.stats.isolated_panics.fetch_add(1, Ordering::Relaxed);
                inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                r.slot.resolve(Err(ServeError::WorkerPanicked));
            }
            Ok(Ok(())) => deliver(inner, r, out, degraded, 1),
            Ok(Err(e)) => {
                inner.stats.failed.fetch_add(1, Ordering::Relaxed);
                r.slot.resolve(Err(ServeError::Conv(e)));
            }
        }
    }
}

/// Resolves a completed request, flagging (never dropping) results whose
/// deadline passed mid-flight.
fn deliver(inner: &Arc<ServerInner>, r: Pending, output: Tensor4, degraded: bool, batch: usize) {
    let late = r.expired(Instant::now());
    if late {
        inner.stats.deadline_misses.fetch_add(1, Ordering::Relaxed);
        ndirect_probe::probe_count!(ServeDeadlineMisses, 1);
    }
    if degraded {
        inner.stats.degraded.fetch_add(1, Ordering::Relaxed);
    }
    inner.stats.completed.fetch_add(1, Ordering::Relaxed);
    r.slot.resolve(Ok(InferResponse { output, late, degraded, batch }));
}

fn fail_all(inner: &Arc<ServerInner>, live: Vec<Pending>, error: &ServeError) {
    inner
        .stats
        .failed
        .fetch_add(live.len() as u64, Ordering::Relaxed);
    for r in live {
        r.slot.resolve(Err(error.clone()));
    }
}

/// Resolves the plan for a batch size: the pinned fast plan, with bounded
/// retry-with-backoff on transient faults, then the minimal-schedule
/// degraded plan as the last resort before giving up.
fn acquire_plan(
    inner: &Arc<ServerInner>,
    model: &Model,
    nb: usize,
    pool_size: usize,
) -> Result<(Arc<ConvPlan<'static>>, bool), ServeError> {
    let shape = model.batch_shape(nb);
    let key = PlanKey::with_tag(&shape, &model.filter, pool_size, TAG_PINNED);
    let mut attempts = 0usize;
    loop {
        let built = model.registry.get_or_try_build(key, || {
            if inner.faults.refused_alloc() {
                return Err(ndirect_core::Error::ScratchAlloc { elements: usize::MAX });
            }
            ConvPlan::try_with_schedule(&shape, &model.filter, &model.pinned)
        });
        match built {
            Ok(plan) => return Ok((plan, false)),
            Err(e) if core_error_is_transient(&e) && attempts < inner.config.max_retries => {
                attempts += 1;
                backoff(inner, attempts);
            }
            Err(e) if core_error_is_transient(&e) => {
                // Retries exhausted: degrade to the minimal schedule (its
                // scratch is a fraction of the tuned plan's).
                let dkey = PlanKey::with_tag(&shape, &model.filter, pool_size, TAG_DEGRADED);
                let degraded = model.registry.get_or_try_build(dkey, || {
                    if inner.faults.refused_alloc() {
                        return Err(ndirect_core::Error::ScratchAlloc { elements: usize::MAX });
                    }
                    ConvPlan::try_with_schedule(&shape, &model.filter, &Schedule::minimal(&shape))
                });
                return match degraded {
                    Ok(plan) => Ok((plan, true)),
                    Err(last) => Err(ServeError::RetriesExhausted { attempts: attempts + 1, last }),
                };
            }
            Err(e) => return Err(ServeError::Conv(e)),
        }
    }
}

fn backoff(inner: &Arc<ServerInner>, attempt: usize) {
    inner.stats.retries.fetch_add(1, Ordering::Relaxed);
    ndirect_probe::probe_count!(ServeRetries, 1);
    let factor = 1u32 << (attempt - 1).min(10) as u32;
    std::thread::sleep(inner.config.retry_backoff.saturating_mul(factor));
}

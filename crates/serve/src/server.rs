//! The serving engine: admission → batcher → shard executors.
//!
//! ```text
//!  clients ──submit()──▶ [ SubmitQueue ]──batcher──▶ [ Dispatch ]──▶ shard 0 (StaticPool)
//!            (shed at      bounded MPMC   coalesces    bounded        shard 1 (StaticPool)
//!             high water)                 same-model    (backpressure)   …
//! ```
//!
//! The batcher coalesces same-model requests into larger-`N` batches —
//! the throughput lever both source papers pull — and the pinned
//! per-model schedule guarantees each sample of a batched execution is
//! bitwise identical to its `N = 1` execution, so batching is purely a
//! performance decision, never a numerics one.

use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ndirect_core::{ConvPlan, PlanKey, PlanRegistry, Schedule};
use ndirect_platform::Platform;
use ndirect_tensor::{ActLayout, ConvShape, Filter, Tensor4};
use ndirect_threads::{CancelToken, StaticPool};

use crate::error::{core_error_is_transient, ExpiredAt, ServeError};
use crate::metrics::{retry_hint, ServeMetrics};
use crate::queue::{Batch, BatchPlanOutcome, Dispatch, Pending, SubmitQueue};
use crate::ticket::{InferResponse, ResponseSlot, Ticket};

/// The span/trace key for a request: the ticket id's low 32 bits (ids are
/// sequential, so collisions need 2^32 requests in one trace window).
fn trace32(id: u64) -> u32 {
    id as u32
}

/// Registry tag of the pinned fast plan ([`pinned_schedule`]).
const TAG_PINNED: u64 = 0;
/// Registry tag of the minimal-schedule degraded fallback plan.
const TAG_DEGRADED: u64 = 1;

/// The schedule a server pins for a model: derived once from the model's
/// `N = 1` shape, filter pre-transformed. Every batch size executes under
/// these exact tile parameters, which is what makes per-sample results
/// bitwise identical across batch compositions (the per-output-element
/// accumulation order over `(c, r, s)` is fixed by the tiles, and rows
/// are independent). Public so test suites can build reference plans.
pub fn pinned_schedule(platform: &Platform, shape1: &ConvShape, threads: usize) -> Schedule {
    Schedule::derive(platform, shape1, threads)
        .with_filter_state(ndirect_core::FilterState::PreTransformed)
}

/// Serving-engine knobs. [`ServeConfig::default`] is sized for tests and
/// small deployments; `servebench` overrides per experiment.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Submit-queue allocation (upper bound on queued requests).
    pub queue_capacity: usize,
    /// Admission control: submissions are shed with
    /// [`ServeError::Overloaded`] while the queue holds this many.
    pub high_water: usize,
    /// Most requests coalesced into one batch.
    pub max_batch: usize,
    /// Worker shard threads (each owns a [`StaticPool`]).
    pub shards: usize,
    /// [`StaticPool`] size per shard.
    pub threads_per_shard: usize,
    /// Transient-failure retries before degrading to the minimal plan.
    pub max_retries: usize,
    /// Backoff before retry `k` is `retry_backoff · 2^(k−1)`.
    pub retry_backoff: Duration,
    /// How long the batcher waits for same-model stragglers when a batch
    /// forms below `max_batch`. Zero disables lingering.
    pub batch_linger: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            high_water: 896,
            max_batch: 8,
            shards: 2,
            threads_per_shard: 1,
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            batch_linger: Duration::from_micros(200),
        }
    }
}

/// A model registered with the server: a name, its `N = 1` input shape,
/// and its frozen weights.
pub struct ModelDef {
    /// Name clients submit against.
    pub name: String,
    /// The single-request convolution shape (`n` must be 1).
    pub shape: ConvShape,
    /// Frozen weights (`KCRS`). The server keys plans on this buffer's
    /// identity; it must not be mutated for the server's lifetime.
    pub filter: Filter,
}

/// A registered model with its pinned schedule and plan registry.
struct Model {
    shape1: ConvShape,
    filter: Filter,
    pinned: Schedule,
    registry: PlanRegistry,
}

impl Model {
    fn batch_shape(&self, nb: usize) -> ConvShape {
        ConvShape { n: nb, ..self.shape1 }
    }
}

/// Fault-injection hook compiled to constant no-ops unless testing or the
/// `chaos` feature is on.
#[derive(Clone, Default)]
struct FaultHook {
    #[cfg(any(test, feature = "chaos"))]
    sheet: Option<Arc<crate::faults::Faults>>,
}

impl FaultHook {
    fn refused_alloc(&self) -> bool {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().is_some_and(|f| f.take_refused_alloc())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            false
        }
    }

    fn panic_batch(&self) -> bool {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().is_some_and(|f| f.take_panic_batch())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            false
        }
    }

    fn kill_worker(&self) -> bool {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().is_some_and(|f| f.take_kill_worker())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            false
        }
    }

    fn poison_submit(&self) -> bool {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().is_some_and(|f| f.take_poison_submit())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            false
        }
    }

    fn kernel_delay(&self) -> Option<Duration> {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().and_then(|f| f.kernel_delay())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            None
        }
    }

    fn queue_stall(&self) -> Option<Duration> {
        #[cfg(any(test, feature = "chaos"))]
        {
            self.sheet.as_ref().and_then(|f| f.take_queue_stall())
        }
        #[cfg(not(any(test, feature = "chaos")))]
        {
            None
        }
    }
}

/// A point-in-time snapshot of the server's health counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub enqueued: u64,
    /// Requests refused admission (overload, arrival-expired, draining).
    pub shed: u64,
    /// Requests resolved with a result.
    pub completed: u64,
    /// Requests resolved with an error after admission.
    pub failed: u64,
    /// Deadlines missed after admission (cancelled in queue + delivered
    /// late).
    pub deadline_misses: u64,
    /// Batches dispatched to shards.
    pub batches: u64,
    /// Requests carried inside dispatched batches.
    pub batched_requests: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Requests answered by the degraded minimal-schedule plan.
    pub degraded: u64,
    /// Requests that panicked and were isolated from their batch peers.
    pub isolated_panics: u64,
    /// Current submit-queue depth.
    pub queue_depth: usize,
    /// Worker deaths detected (and healed) across all shard pools.
    pub worker_deaths: usize,
}

struct ServerInner {
    config: ServeConfig,
    models: Vec<Model>,
    by_name: HashMap<String, usize>,
    queue: SubmitQueue,
    dispatch: Dispatch,
    /// The telemetry plane (DESIGN.md §16): always-on per-stage
    /// histograms, fault counters, and backpressure gauges.
    metrics: ServeMetrics,
    next_id: AtomicU64,
    faults: FaultHook,
}

impl ServerInner {
    /// The measured backoff hint: current backlog drained at the live p99
    /// per-request service time (histogram-derived, not an EWMA guess).
    fn estimate_retry_after(&self, depth: usize) -> Duration {
        retry_hint(
            depth,
            self.config.shards,
            self.metrics.aggregate.service.quantile(99.0),
        )
    }
}

/// The multi-worker serving engine. See the [crate docs](crate) for the
/// pipeline and fault model.
pub struct Server {
    inner: Arc<ServerInner>,
    pools: Vec<Arc<StaticPool>>,
    batcher: Option<std::thread::JoinHandle<()>>,
    shards: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Builds a server: validates the config, pins each model's schedule,
    /// eagerly builds every model's `N = 1` plan (so misconfigured models
    /// fail here, not on the first request), spawns the shard pools and
    /// the pipeline threads.
    pub fn try_new(config: ServeConfig, models: Vec<ModelDef>) -> Result<Server, ServeError> {
        Self::build(config, models, FaultHook::default())
    }

    /// [`Server::try_new`] with a fault sheet attached; the chaos suites'
    /// entry point.
    #[cfg(any(test, feature = "chaos"))]
    pub fn with_faults(
        config: ServeConfig,
        models: Vec<ModelDef>,
        faults: Arc<crate::faults::Faults>,
    ) -> Result<Server, ServeError> {
        Self::build(config, models, FaultHook { sheet: Some(faults) })
    }

    fn build(config: ServeConfig, defs: Vec<ModelDef>, faults: FaultHook) -> Result<Server, ServeError> {
        let cfg_err = |msg: String| Err(ServeError::Config { msg });
        if config.queue_capacity == 0 {
            return cfg_err("queue_capacity must be >= 1".into());
        }
        if config.high_water == 0 || config.high_water > config.queue_capacity {
            return cfg_err(format!(
                "high_water must be in 1..={} (got {})",
                config.queue_capacity, config.high_water
            ));
        }
        if config.max_batch == 0 {
            return cfg_err("max_batch must be >= 1".into());
        }
        if config.shards == 0 {
            return cfg_err("shards must be >= 1".into());
        }
        if config.threads_per_shard == 0 {
            return cfg_err("threads_per_shard must be >= 1".into());
        }

        let platform = ndirect_platform::host();
        let mut models = Vec::with_capacity(defs.len());
        let mut by_name = HashMap::with_capacity(defs.len());
        let mut names = Vec::with_capacity(defs.len());
        for def in defs {
            if def.shape.n != 1 {
                return cfg_err(format!(
                    "model {:?}: signature shape must have n == 1 (got {})",
                    def.name, def.shape.n
                ));
            }
            if by_name.contains_key(&def.name) {
                return cfg_err(format!("duplicate model name {:?}", def.name));
            }
            let pinned = pinned_schedule(&platform, &def.shape, config.threads_per_shard);
            let model = Model {
                shape1: def.shape,
                filter: def.filter,
                pinned,
                registry: PlanRegistry::new(),
            };
            // Eager N = 1 plan: validates shape/filter/ISA now and makes
            // the first single-request call allocation-free.
            let key = PlanKey::with_tag(&model.shape1, &model.filter, config.threads_per_shard, TAG_PINNED);
            model
                .registry
                .get_or_try_build(key, || {
                    ConvPlan::try_with_schedule(&model.shape1, &model.filter, &model.pinned)
                })
                .map_err(ServeError::Conv)?;
            names.push(def.name.clone());
            by_name.insert(def.name, models.len());
            models.push(model);
        }
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let metrics = ServeMetrics::new(&name_refs);

        let mut pools = Vec::with_capacity(config.shards);
        for _ in 0..config.shards {
            pools.push(Arc::new(
                StaticPool::try_new(config.threads_per_shard)
                    .map_err(|e| ServeError::Conv(ndirect_core::Error::Pool(e)))?,
            ));
        }

        let dispatch_capacity = config.shards * 2;
        let inner = Arc::new(ServerInner {
            queue: SubmitQueue::new(config.queue_capacity, config.high_water),
            dispatch: Dispatch::new(dispatch_capacity),
            config,
            models,
            by_name,
            metrics,
            next_id: AtomicU64::new(1),
            faults,
        });

        let spawn_err =
            |e: std::io::Error| ServeError::Config { msg: format!("failed to spawn serving thread: {e}") };
        let batcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ndirect-serve-batcher".into())
                .spawn(move || batcher_loop(&inner))
                .map_err(spawn_err)?
        };
        let mut shards = Vec::with_capacity(pools.len());
        for (i, pool) in pools.iter().enumerate() {
            let inner = Arc::clone(&inner);
            let pool = Arc::clone(pool);
            shards.push(
                std::thread::Builder::new()
                    .name(format!("ndirect-serve-shard-{i}"))
                    .spawn(move || shard_loop(&inner, &pool))
                    .map_err(spawn_err)?,
            );
        }

        Ok(Server { inner, pools, batcher: Some(batcher), shards })
    }

    /// Submits a request against a registered model. `input` is the
    /// `(1, C, H, W)` activation in `NCHW`; `deadline`, if given, sheds
    /// the request once passed (unless it is already mid-kernel — those
    /// results are delivered flagged [`InferResponse::late`]).
    ///
    /// Never blocks: over the high-water mark the request is refused with
    /// [`ServeError::Overloaded`] carrying a backoff hint.
    pub fn submit(
        &self,
        model: &str,
        input: Tensor4,
        deadline: Option<Instant>,
    ) -> Result<Ticket, ServeError> {
        let inner = &self.inner;
        let Some(&idx) = inner.by_name.get(model) else {
            return Err(ServeError::UnknownModel { name: model.to_string() });
        };
        let m = &inner.models[idx];
        let expected = (1, m.shape1.c, m.shape1.h, m.shape1.w);
        if input.layout() != ActLayout::Nchw {
            return Err(ServeError::BadInput {
                context: "serving input must be NCHW",
                expected,
                got: input.dims(),
            });
        }
        if input.dims() != expected {
            return Err(ServeError::BadInput {
                context: "input dims",
                expected,
                got: input.dims(),
            });
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            for s in inner.metrics.sets(idx) {
                s.shed.add(1);
                s.expired_arrival.add(1);
            }
            inner.metrics.shed_rps.record(1);
            ndirect_probe::probe_count!(ServeShed, 1);
            return Err(ServeError::DeadlineExpired { at: ExpiredAt::Arrival });
        }
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed — ticket id allocation; only uniqueness matters
        let slot = Arc::new(ResponseSlot::default());
        let pending = Pending {
            id,
            model: idx,
            input,
            deadline,
            slot: Arc::clone(&slot),
            cancel: CancelToken::new(),
            poison: inner.faults.poison_submit(),
            t_submit_ns: ndirect_probe::now_ns(),
            t_taken_ns: 0,
        };
        match inner.queue.push(pending) {
            Ok(depth) => {
                for s in inner.metrics.sets(idx) {
                    s.enqueued.add(1);
                }
                inner.metrics.queue_depth.set(depth as u64);
                inner.metrics.queue_high_water.set_max(depth as u64);
                ndirect_probe::probe_count!(ServeEnqueued, 1);
                Ok(Ticket { slot, id })
            }
            Err(boxed) => {
                let (error, rejected) = *boxed;
                // The rejected request never got a ticket; suppress its
                // drop-guard resolution path by resolving explicitly.
                rejected.slot.resolve(Err(error.clone()));
                drop(rejected);
                for s in inner.metrics.sets(idx) {
                    s.shed.add(1);
                    if matches!(error, ServeError::Overloaded { .. }) {
                        s.shed_overload.add(1);
                    }
                }
                inner.metrics.shed_rps.record(1);
                ndirect_probe::probe_count!(ServeShed, 1);
                Err(match error {
                    ServeError::Overloaded { depth, .. } => ServeError::Overloaded {
                        depth,
                        retry_after: inner.estimate_retry_after(depth),
                    },
                    other => other,
                })
            }
        }
    }

    /// [`Server::submit`] with a relative deadline.
    pub fn submit_within(
        &self,
        model: &str,
        input: Tensor4,
        timeout: Duration,
    ) -> Result<Ticket, ServeError> {
        self.submit(model, input, Some(Instant::now() + timeout))
    }

    /// Snapshot of the server's health counters, derived from the
    /// aggregate scope of the telemetry plane (`deadline_misses` is
    /// queue-expiries plus late deliveries, as before).
    pub fn stats(&self) -> ServeStats {
        let a = &self.inner.metrics.aggregate;
        ServeStats {
            enqueued: a.enqueued.get(),
            shed: a.shed.get(),
            completed: a.completed.get(),
            failed: a.failed.get(),
            deadline_misses: a.expired_queue.get() + a.late.get(),
            batches: a.batches.get(),
            batched_requests: a.batched_requests.get(),
            retries: a.retries.get(),
            degraded: a.degraded.get(),
            isolated_panics: a.panics.get(),
            queue_depth: self.inner.queue.depth(),
            worker_deaths: self.pools.iter().map(|p| p.worker_deaths()).sum(),
        }
    }

    /// Snapshot of every registered telemetry metric — per-stage latency
    /// histograms, fault counters, gauges — per model and aggregate.
    /// Serialize with [`MetricsSnapshot::to_json`] or
    /// [`MetricsSnapshot::to_prometheus`]; diff two snapshots with
    /// [`MetricsSnapshot::since`].
    ///
    /// [`MetricsSnapshot::to_json`]: ndirect_probe::metrics::MetricsSnapshot::to_json
    /// [`MetricsSnapshot::to_prometheus`]: ndirect_probe::metrics::MetricsSnapshot::to_prometheus
    /// [`MetricsSnapshot::since`]: ndirect_probe::metrics::MetricsSnapshot::since
    pub fn metrics_snapshot(&self) -> ndirect_probe::metrics::MetricsSnapshot {
        // The depth gauge tracks push-time observations; refresh it so a
        // snapshot of an idle server reads the true (drained) depth.
        self.inner.metrics.queue_depth.set(self.inner.queue.depth() as u64);
        self.inner.metrics.snapshot()
    }

    /// Total plans across all model registries (diagnostics: proves shed
    /// requests never triggered a plan build).
    pub fn planned_plans(&self) -> usize {
        self.inner.models.iter().map(|m| m.registry.len()).sum()
    }

    /// Graceful drain: stops admitting, completes everything already
    /// queued or in flight, then joins the pipeline threads.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        self.inner.queue.close();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
        // The batcher closes the dispatch on clean exit; close again
        // defensively in case it died.
        self.inner.dispatch.close();
        for h in self.shards.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

// AUDIT: hotpath
fn batcher_loop(inner: &Arc<ServerInner>) {
    // AUDIT: allow(hotpath-no-alloc) loop-local buffer allocated once and
    // reused (cleared) every wakeup.
    let mut expired = Vec::new();
    loop {
        if let Some(stall) = inner.faults.queue_stall() {
            std::thread::sleep(stall);
        }
        expired.clear();
        let outcome =
            inner
                .queue
                .next_batch(inner.config.max_batch, inner.config.batch_linger, &mut expired);
        if !expired.is_empty() {
            for &model in &expired {
                for s in inner.metrics.sets(model) {
                    s.expired_queue.add(1);
                    s.failed.add(1);
                }
            }
            ndirect_probe::probe_count!(ServeDeadlineMisses, expired.len() as u64);
            ndirect_probe::probe_count!(ServeDequeued, expired.len() as u64);
        }
        match outcome {
            BatchPlanOutcome::Batch(requests) => {
                let t_formed_ns = ndirect_probe::now_ns();
                let n = requests.len() as u64;
                // INDEX: next_batch only returns non-empty batches.
                let model = requests[0].model;
                for r in &requests {
                    // Admission wait ended when `take_matching` stamped the
                    // request; linger runs from there to batch formation.
                    let admission_ns = r.t_taken_ns.saturating_sub(r.t_submit_ns);
                    let linger_ns = t_formed_ns.saturating_sub(r.t_taken_ns);
                    for s in inner.metrics.sets(model) {
                        s.stage_admission.record(admission_ns);
                        s.stage_linger.record(linger_ns);
                    }
                    ndirect_probe::record_span(
                        ndirect_probe::Phase::ServeAdmission,
                        trace32(r.id),
                        r.t_submit_ns,
                        admission_ns,
                    );
                    ndirect_probe::record_span(
                        ndirect_probe::Phase::ServeLinger,
                        trace32(r.id),
                        r.t_taken_ns,
                        linger_ns,
                    );
                }
                for s in inner.metrics.sets(model) {
                    s.batches.add(1);
                    s.batched_requests.add(n);
                    s.batch_size.record(n);
                }
                ndirect_probe::probe_count!(ServeDequeued, n);
                ndirect_probe::probe_count!(ServeBatches, 1);
                ndirect_probe::probe_count!(ServeBatchedRequests, n);
                // AUDIT: allow(hotpath-no-alloc) per-batch handoff to the
                // shard queue; one enqueue per formed batch.
                inner.dispatch.push(Batch { model, requests, t_formed_ns });
            }
            BatchPlanOutcome::Swept => {}
            BatchPlanOutcome::Drained => break,
        }
    }
    inner.dispatch.close();
}

// AUDIT: hotpath
fn shard_loop(inner: &Arc<ServerInner>, pool: &Arc<StaticPool>) {
    while let Some(batch) = inner.dispatch.pop() {
        execute_batch(inner, pool, batch);
    }
}

/// How one batch execution attempt ended.
enum Exec {
    Done,
    Panicked,
    Failed { error: ndirect_core::Error, attempts: usize },
}

fn execute_batch(inner: &Arc<ServerInner>, pool: &Arc<StaticPool>, batch: Batch) {
    let model_idx = batch.model;
    // INDEX: model indexes were validated at submission.
    let model = &inner.models[model_idx];
    let t_picked_ns = ndirect_probe::now_ns();

    // Defensive: a request cancelled while the batch sat in dispatch was
    // already resolved by its canceller; just drop it (never a kernel
    // slot for a cancelled request).
    let live: Vec<Pending> = batch
        .requests
        .into_iter()
        .filter(|r| !r.cancel.is_cancelled())
        // AUDIT: allow(hotpath-no-alloc) per-batch gather of live
        // requests; bounded by batch size.
        .collect();
    if live.is_empty() {
        return;
    }

    // Dispatch-queue stage: batch sealed → shard pickup, shared by every
    // request in the batch.
    let dispatch_ns = t_picked_ns.saturating_sub(batch.t_formed_ns);
    for r in &live {
        for s in inner.metrics.sets(model_idx) {
            s.stage_dispatch.record(dispatch_ns);
        }
        ndirect_probe::record_span(
            ndirect_probe::Phase::ServeDispatch,
            trace32(r.id),
            batch.t_formed_ns,
            dispatch_ns,
        );
    }

    if inner.faults.kill_worker() {
        pool.inject_worker_death();
    }

    let nb = live.len();
    let (plan, degraded) = match acquire_plan(inner, model_idx, nb, pool.size()) {
        Ok(pair) => pair,
        Err(error) => {
            fail_all(inner, model_idx, live, &error);
            return;
        }
    };

    // Gather: NCHW puts each image contiguous, so batching is a memcpy.
    let shape = model.batch_shape(nb);
    let in_len = model.shape1.c * model.shape1.h * model.shape1.w;
    let out_len = model.shape1.k * model.shape1.p() * model.shape1.q();
    let mut batch_in = Tensor4::zeros(nb, shape.c, shape.h, shape.w, ActLayout::Nchw);
    for (i, r) in live.iter().enumerate() {
        batch_in.as_mut_slice()[i * in_len..(i + 1) * in_len].copy_from_slice(r.input.as_slice());
    }
    let mut batch_out = Tensor4::zeros(nb, shape.k, shape.p(), shape.q(), ActLayout::Nchw);

    let poisoned = live.iter().any(|r| r.poison);
    // Tag the pool's worker/region spans with the batch's lead trace ID
    // so kernel activity in the Chrome trace links back to the requests
    // it served.
    // INDEX: live is non-empty — the empty case returned above.
    pool.set_trace_tag(trace32(live[0].id));
    let t_exec_start_ns = ndirect_probe::now_ns();
    let mut attempts = 0usize;
    let outcome = loop {
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(delay) = inner.faults.kernel_delay() {
                std::thread::sleep(delay);
            }
            if poisoned || inner.faults.panic_batch() {
                // AUDIT: allow(hotpath-no-panic) fault injection, confined
                // by the surrounding catch_unwind.
                panic!("injected kernel poison");
            }
            plan.execute(pool, &batch_in, &mut batch_out)
        }));
        match attempt {
            Err(_) => break Exec::Panicked,
            Ok(Ok(())) => break Exec::Done,
            Ok(Err(e)) if core_error_is_transient(&e) && attempts < inner.config.max_retries => {
                attempts += 1;
                backoff(inner, model_idx, attempts);
            }
            Ok(Err(e)) => break Exec::Failed { error: e, attempts },
        }
    };
    let t_exec_end_ns = ndirect_probe::now_ns();
    pool.set_trace_tag(0);

    match outcome {
        Exec::Done => {
            let exec_ns = t_exec_end_ns.saturating_sub(t_exec_start_ns);
            let service_ns = exec_ns / nb as u64;
            for (i, r) in live.into_iter().enumerate() {
                for s in inner.metrics.sets(model_idx) {
                    s.stage_execute.record(exec_ns);
                    s.service.record(service_ns);
                }
                ndirect_probe::record_span(
                    ndirect_probe::Phase::ServeExecute,
                    trace32(r.id),
                    t_exec_start_ns,
                    exec_ns,
                );
                let mut out = Tensor4::zeros(1, shape.k, shape.p(), shape.q(), ActLayout::Nchw);
                out.as_mut_slice()
                    .copy_from_slice(&batch_out.as_slice()[i * out_len..(i + 1) * out_len]);
                deliver(inner, model_idx, r, out, degraded, nb, t_exec_end_ns);
            }
        }
        Exec::Panicked => isolate_batch(inner, pool, model_idx, live),
        Exec::Failed { error, attempts } => {
            let error = if core_error_is_transient(&error) {
                ServeError::RetriesExhausted { attempts: attempts + 1, last: error }
            } else {
                ServeError::Conv(error)
            };
            fail_all(inner, model_idx, live, &error);
        }
    }
}

/// Panic isolation: re-run each request of a panicked batch individually
/// under its own `catch_unwind`, so one poisoned request fails alone and
/// its peers still complete (bitwise identically to the batched run,
/// thanks to the pinned schedule).
// AUDIT: cold — panic-recovery path; runs only after a batch panicked.
fn isolate_batch(inner: &Arc<ServerInner>, pool: &Arc<StaticPool>, model_idx: usize, live: Vec<Pending>) {
    let model = &inner.models[model_idx];
    let (plan, degraded) = match acquire_plan(inner, model_idx, 1, pool.size()) {
        Ok(pair) => pair,
        Err(error) => {
            fail_all(inner, model_idx, live, &error);
            return;
        }
    };
    let shape = model.shape1;
    for r in live {
        let mut out = Tensor4::zeros(1, shape.k, shape.p(), shape.q(), ActLayout::Nchw);
        pool.set_trace_tag(trace32(r.id));
        let t_start_ns = ndirect_probe::now_ns();
        let attempt = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if r.poison {
                panic!("injected kernel poison");
            }
            plan.execute(pool, &r.input, &mut out)
        }));
        let t_end_ns = ndirect_probe::now_ns();
        pool.set_trace_tag(0);
        match attempt {
            Err(_) => {
                for s in inner.metrics.sets(model_idx) {
                    s.panics.add(1);
                    s.failed.add(1);
                }
                r.slot.resolve(Err(ServeError::WorkerPanicked));
            }
            Ok(Ok(())) => {
                let exec_ns = t_end_ns.saturating_sub(t_start_ns);
                for s in inner.metrics.sets(model_idx) {
                    s.stage_execute.record(exec_ns);
                    s.service.record(exec_ns);
                }
                ndirect_probe::record_span(
                    ndirect_probe::Phase::ServeExecute,
                    trace32(r.id),
                    t_start_ns,
                    exec_ns,
                );
                deliver(inner, model_idx, r, out, degraded, 1, t_end_ns);
            }
            Ok(Err(e)) => {
                for s in inner.metrics.sets(model_idx) {
                    s.failed.add(1);
                }
                r.slot.resolve(Err(ServeError::Conv(e)));
            }
        }
    }
}

/// Resolves a completed request, flagging (never dropping) results whose
/// deadline passed mid-flight. `exec_end_ns` bounds the delivery stage:
/// kernel done → ticket resolved (per-sample scatter + wake).
fn deliver(
    inner: &Arc<ServerInner>,
    model_idx: usize,
    r: Pending,
    output: Tensor4,
    degraded: bool,
    batch: usize,
    exec_end_ns: u64,
) {
    let late = r.expired(Instant::now());
    let t_done_ns = ndirect_probe::now_ns();
    let delivery_ns = t_done_ns.saturating_sub(exec_end_ns);
    let latency_ns = t_done_ns.saturating_sub(r.t_submit_ns);
    for s in inner.metrics.sets(model_idx) {
        s.stage_delivery.record(delivery_ns);
        s.latency.record(latency_ns);
        s.completed.add(1);
        if late {
            s.late.add(1);
        }
        if degraded {
            s.degraded.add(1);
        }
    }
    inner.metrics.completed_rps.record(1);
    ndirect_probe::record_span(
        ndirect_probe::Phase::ServeDeliver,
        trace32(r.id),
        exec_end_ns,
        delivery_ns,
    );
    if late {
        ndirect_probe::probe_count!(ServeDeadlineMisses, 1);
    }
    r.slot.resolve(Ok(InferResponse { output, late, degraded, batch }));
}

// AUDIT: cold — failure path; resolves every request with an error.
fn fail_all(inner: &Arc<ServerInner>, model_idx: usize, live: Vec<Pending>, error: &ServeError) {
    for s in inner.metrics.sets(model_idx) {
        s.failed.add(live.len() as u64);
    }
    for r in live {
        r.slot.resolve(Err(error.clone()));
    }
}

/// Resolves the plan for a batch size: the pinned fast plan, with bounded
/// retry-with-backoff on transient faults, then the minimal-schedule
/// degraded plan as the last resort before giving up.
fn acquire_plan(
    inner: &Arc<ServerInner>,
    model_idx: usize,
    nb: usize,
    pool_size: usize,
) -> Result<(Arc<ConvPlan<'static>>, bool), ServeError> {
    // INDEX: model indexes were validated at submission.
    let model = &inner.models[model_idx];
    let shape = model.batch_shape(nb);
    let key = PlanKey::with_tag(&shape, &model.filter, pool_size, TAG_PINNED);
    let mut attempts = 0usize;
    loop {
        let built = model.registry.get_or_try_build(key, || {
            if inner.faults.refused_alloc() {
                return Err(ndirect_core::Error::ScratchAlloc { elements: usize::MAX });
            }
            ConvPlan::try_with_schedule(&shape, &model.filter, &model.pinned)
        });
        match built {
            Ok(plan) => return Ok((plan, false)),
            Err(e) if core_error_is_transient(&e) && attempts < inner.config.max_retries => {
                attempts += 1;
                backoff(inner, model_idx, attempts);
            }
            Err(e) if core_error_is_transient(&e) => {
                // Retries exhausted: degrade to the minimal schedule (its
                // scratch is a fraction of the tuned plan's).
                let dkey = PlanKey::with_tag(&shape, &model.filter, pool_size, TAG_DEGRADED);
                let degraded = model.registry.get_or_try_build(dkey, || {
                    if inner.faults.refused_alloc() {
                        return Err(ndirect_core::Error::ScratchAlloc { elements: usize::MAX });
                    }
                    ConvPlan::try_with_schedule(&shape, &model.filter, &Schedule::minimal(&shape))
                });
                return match degraded {
                    Ok(plan) => Ok((plan, true)),
                    Err(last) => Err(ServeError::RetriesExhausted { attempts: attempts + 1, last }),
                };
            }
            Err(e) => return Err(ServeError::Conv(e)),
        }
    }
}

fn backoff(inner: &Arc<ServerInner>, model_idx: usize, attempt: usize) {
    for s in inner.metrics.sets(model_idx) {
        s.retries.add(1);
    }
    ndirect_probe::probe_count!(ServeRetries, 1);
    let factor = 1u32 << (attempt - 1).min(10) as u32;
    std::thread::sleep(inner.config.retry_backoff.saturating_mul(factor));
}
